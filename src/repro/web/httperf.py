"""httperf-style open-loop workload generation and per-level results.

The paper drives each concurrency level with 8 httperf clients behind
8 HAProxy balancers, tuning calls-per-connection so the offered request
rate matches what the tier can sustain.  Here one generator process per
deployment spawns connections at the target aggregate rate (Poisson
arrivals), assigns them round-robin to web servers (the HAProxy role)
and round-robin to the 8 client hosts (the httperf role).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim import AnyOf, Timeout
from . import params as P
from .nodes import SYN_RETRY_DELAYS, WebServerNode


@dataclass
class LevelStats:
    """Raw counters accumulated while one concurrency level runs."""

    ok_calls: int = 0
    error_calls: int = 0
    timeout_calls: int = 0
    failed_connections: int = 0
    connections: int = 0
    syn_retries: int = 0
    delay_sum_s: float = 0.0          # per-call delay incl. connect share
    call_delay_sum_s: float = 0.0     # per-call delay excl. connect


@dataclass(frozen=True)
class LevelResult:
    """One point on the Figure 4-9 curves."""

    platform: str
    concurrency: int
    calls_per_connection: int
    window_s: float
    ok_calls: int
    error_calls: int
    timeout_calls: int
    failed_connections: int
    connections: int
    syn_retries: int
    mean_delay_s: float
    mean_power_w: float

    @property
    def requests_per_second(self) -> float:
        return self.ok_calls / self.window_s

    @property
    def error_rate(self) -> float:
        total = self.ok_calls + self.error_calls + self.timeout_calls
        if total == 0:
            return 1.0 if self.failed_connections else 0.0
        return (self.error_calls + self.timeout_calls) / total

    @property
    def has_server_errors(self) -> bool:
        """True when the paper would exclude this level (5xx observed)."""
        return self.error_calls > 0

    @property
    def energy_joules(self) -> float:
        return self.mean_power_w * self.window_s


class HttperfDriver:
    """Generates connections against a set of web-server nodes."""

    def __init__(self, sim, topology, web_nodes: List[WebServerNode],
                 client_names: List[str], workload: P.WebWorkload, rng,
                 collect_after: float = 0.0):
        if not web_nodes or not client_names:
            raise ValueError("need web nodes and client hosts")
        self.sim = sim
        self.topology = topology
        self.web_nodes = web_nodes
        self.client_names = client_names
        self.workload = workload
        self.rng = rng
        self.collect_after = collect_after
        self.stats = LevelStats()

    def generate(self, concurrency: float, calls: int, until: float):
        """Process generator: spawn connections at ``concurrency``/s."""
        if concurrency <= 0 or calls < 1:
            raise ValueError("concurrency must be > 0 and calls >= 1")
        index = 0
        n = len(self.web_nodes)
        sim = self.sim
        expovariate = self.rng.expovariate
        while sim._now < until:
            yield expovariate(concurrency)
            faults = sim.faults
            if faults is None:
                web = self.web_nodes[index % n]
                client = self.client_names[index % len(self.client_names)]
                index += 1
            else:
                # The HAProxy role: health checks pull a backend out of
                # rotation once its outage exceeds the detection window,
                # so its share of the load fails over to the survivors.
                web = None
                for _ in range(n):
                    candidate = self.web_nodes[index % n]
                    client = self.client_names[index % len(self.client_names)]
                    index += 1
                    if not faults.detected_down(candidate.server.name):
                        web = candidate
                        break
                if web is None:
                    # Every backend is marked down.
                    self._count_failed_connection()
                    continue
            sim.process(self._connection(client, web, calls),
                        name=f"conn-{index}")

    def _connection(self, client: str, web: WebServerNode, calls: int):
        """One httperf connection: SYN (with retries), then ``calls`` calls."""
        sim = self.sim
        start = sim._now
        attempt = 0
        while not web.try_accept():
            if attempt >= len(SYN_RETRY_DELAYS):
                self._count_failed_connection()
                return
            yield SYN_RETRY_DELAYS[attempt]
            attempt += 1
            self._count_syn_retry()
        web_name = web.server.name
        yield self.topology.rtt(client, web_name)
        connect_delay = sim._now - start
        if sim.trace is not None:
            sim.trace.complete("connect", start, category="web",
                               node=web_name, client=client,
                               syn_retries=attempt)
        self._count_connection()
        epoch = web.epoch
        message = self.topology.message
        request_bytes = self.workload.request_bytes
        timeout_s = self.workload.client_timeout_s
        try:
            for i in range(calls):
                call_start = sim._now
                yield from message(client, web_name, request_bytes)
                handler = sim.process(web.handle_call(client))
                timer = Timeout(sim, timeout_s)
                yield AnyOf(sim, [handler, timer])
                if not handler.processed:
                    self._count_timeout()
                    return  # client gave up; server keeps grinding
                # The race is settled: drop the client-timeout timer
                # from the calendar instead of letting every completed
                # call leave a dead 10 s entry bloating the heap.
                timer.cancel()
                record = handler.value
                call_delay = sim._now - call_start
                reported = call_delay + (connect_delay if i == 0 else 0.0)
                self._count_call(record.ok, call_delay, reported)
                if record.status == 503:
                    return  # the server died; the connection died with it
        finally:
            web.close_connection(epoch)

    # -- windowed counting -------------------------------------------------

    def _in_window(self) -> bool:
        return self.sim._now >= self.collect_after

    def _count_call(self, ok: bool, call_delay: float, reported: float):
        if not self._in_window():
            return
        if ok:
            self.stats.ok_calls += 1
            self.stats.delay_sum_s += reported
            self.stats.call_delay_sum_s += call_delay
        else:
            self.stats.error_calls += 1

    def _count_timeout(self):
        if self._in_window():
            self.stats.timeout_calls += 1

    def _count_failed_connection(self):
        if self._in_window():
            self.stats.failed_connections += 1

    def _count_syn_retry(self):
        if self._in_window():
            self.stats.syn_retries += 1

    def _count_connection(self):
        if self._in_window():
            self.stats.connections += 1
