"""Time-varying open-loop arrival shapes: diurnal days, flash crowds.

The paper drives each measurement at a *fixed* offered rate; an
autoscaling experiment needs the thing real control planes face — a
day.  A :class:`ShapedLoad` is a deterministic rate function r(t) in
requests/s built from a raised-cosine diurnal swing plus any number of
flash crowds (multiplicative bursts with a ramp, a hold and a decay).
The httperf driver turns it into Poisson arrivals by Lewis-Shedler
thinning against the shape's peak bound, so arrivals stay seeded and
reproducible: same shape + same seed = the same connection sequence,
which is what lets the headline experiment commit one canonical day.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class DiurnalShape:
    """A raised-cosine day: trough at ``trough_at_s``, peak half a
    period later.

    ``rate(t) = base + (peak - base) * (1 - cos(2*pi*(t - trough)/period)) / 2``
    """

    base_rps: float
    peak_rps: float
    period_s: float
    trough_at_s: float = 0.0

    def __post_init__(self):
        if self.base_rps < 0 or self.peak_rps < self.base_rps:
            raise ValueError("need 0 <= base_rps <= peak_rps")
        if self.period_s <= 0:
            raise ValueError("period_s must be > 0")

    def rate(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.trough_at_s) / self.period_s
        return (self.base_rps
                + (self.peak_rps - self.base_rps) * 0.5 * (1.0 - math.cos(phase)))


@dataclass(frozen=True)
class FlashCrowd:
    """A multiplicative burst: ramp up, hold, decay back to 1x.

    The factor is 1.0 outside the event, climbs linearly to
    ``multiplier`` over ``ramp_s``, holds for ``hold_s``, then decays
    linearly over ``decay_s``.  A linear ramp (not a step) is what a
    real flash crowd looks like — and what gives a lookahead policy a
    visible slope to extrapolate before capacity is actually short.
    """

    at_s: float
    ramp_s: float
    hold_s: float
    decay_s: float
    multiplier: float

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.ramp_s <= 0 or self.decay_s <= 0 or self.hold_s < 0:
            raise ValueError("ramp_s/decay_s must be > 0, hold_s >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def factor(self, t: float) -> float:
        dt = t - self.at_s
        if dt <= 0:
            return 1.0
        if dt < self.ramp_s:
            return 1.0 + (self.multiplier - 1.0) * dt / self.ramp_s
        dt -= self.ramp_s
        if dt < self.hold_s:
            return self.multiplier
        dt -= self.hold_s
        if dt < self.decay_s:
            return self.multiplier - (self.multiplier - 1.0) * dt / self.decay_s
        return 1.0


@dataclass(frozen=True)
class ShapedLoad:
    """A diurnal base modulated by zero or more flash crowds."""

    diurnal: DiurnalShape
    flashes: Tuple[FlashCrowd, ...] = field(default_factory=tuple)

    def rate(self, t: float) -> float:
        """Offered request rate (req/s) at simulated time ``t``."""
        rate = self.diurnal.rate(t)
        for flash in self.flashes:
            rate *= flash.factor(t)
        return rate

    def peak_bound(self) -> float:
        """A rate every instant stays at or below (thinning envelope).

        Conservative: the diurnal peak times the product of every
        flash multiplier.  Flash crowds rarely coincide, so the bound
        over-rejects a little; correctness only needs r(t) <= bound.
        """
        bound = self.diurnal.peak_rps
        for flash in self.flashes:
            bound *= flash.multiplier
        return bound

    # -- (de)serialisation, for the committed experiment plan ------------

    def to_dict(self) -> Dict:
        return {
            "diurnal": {
                "base_rps": self.diurnal.base_rps,
                "peak_rps": self.diurnal.peak_rps,
                "period_s": self.diurnal.period_s,
                "trough_at_s": self.diurnal.trough_at_s,
            },
            "flashes": [
                {"at_s": f.at_s, "ramp_s": f.ramp_s, "hold_s": f.hold_s,
                 "decay_s": f.decay_s, "multiplier": f.multiplier}
                for f in self.flashes
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShapedLoad":
        diurnal = DiurnalShape(**data["diurnal"])
        flashes = tuple(FlashCrowd(**f) for f in data.get("flashes", ()))
        return cls(diurnal=diurnal, flashes=flashes)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ShapedLoad":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
