"""Service nodes of the LLMP stack: web servers, memcached, MySQL.

Each node wraps one simulated :class:`~repro.hardware.Server` and
exposes process generators implementing its service logic.  CPU bursts
queue on the server's vcore pool, so queueing delay emerges naturally
as offered load approaches capacity — the mechanism behind both the
cache-delay blow-up of Table 7 and the 500-error cliffs of Figures 4-6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..hardware.server import Server
from ..net import Topology
from ..sim import Interrupt, Simulation
from . import params as P

#: Client-kernel SYN retransmission schedule (1 s, then 2 s, then 4 s).
SYN_RETRY_DELAYS = (1.0, 2.0, 4.0)


@dataclass(slots=True)
class CallRecord:
    """Timing of one completed HTTP call, as logged on the web server."""

    start: float
    total_s: float = 0.0
    cache_s: float = 0.0
    db_s: float = 0.0
    status: int = 200
    connect_s: float = 0.0
    syn_retries: int = 0
    #: True when admission control fast-failed the call (resilience
    #: only; a shed 503 is retryable, unlike a dead server's 503).
    shed: bool = False
    #: CPU-busy seconds of this call (tracked only under resilience, so
    #: a losing hedge leg's *work* — not its queueing — is what the
    #: ledger prices as waste).
    cpu_s: float = 0.0
    #: Causal trace id of this call's span tree (0 when untraced); lets
    #: telemetry exemplars link a histogram bucket back to a trace.
    trace_id: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 200


class PortPool:
    """Ephemeral port accounting with TIME_WAIT recycling.

    ``acquire`` is drop-style: a connection that finds no free port is
    refused (its SYN is dropped), mirroring kernel behaviour; ports
    return to the pool ``time_wait_s`` after the connection closes.
    """

    def __init__(self, sim: Simulation, size: int, time_wait_s: float):
        if size < 1:
            raise ValueError("port pool must hold at least one port")
        if time_wait_s < 0:
            raise ValueError("time_wait_s must be >= 0")
        self.sim = sim
        self.size = size
        self.available = size
        self.time_wait_s = time_wait_s

    def try_acquire(self) -> bool:
        """Claim a port if one is free."""
        if self.available <= 0:
            return False
        self.available -= 1
        return True

    def release_after_time_wait(self) -> None:
        """Schedule the port's return once TIME_WAIT expires."""
        if self.time_wait_s == 0:
            self.available += 1
            return
        wake = self.sim.timeout(self.time_wait_s)
        # Bound method as the callback: one closure per connection
        # close adds up across a sweep.
        wake.add_callback(self._release)

    def _release(self, _event=None) -> None:
        self.available = min(self.size, self.available + 1)


class CacheNode:
    """A memcached server."""

    def __init__(self, server: Server):
        self.server = server
        self.gets = 0

    def handle_get(self):
        """Process generator: serve one GET (CPU only; data is in RAM)."""
        self.gets += 1
        yield from self.server.cpu.execute(P.CACHE_OP_MI)


class DatabaseNode:
    """A MySQL server (always brawny Dell hardware, shared by both tiers)."""

    def __init__(self, server: Server, rng: random.Random):
        self.server = server
        self.rng = rng
        self.queries = 0

    def handle_query(self, content_bytes: float):
        """Process generator: execute one SELECT.

        Most rows are served from the buffer pool; a calibrated fraction
        of blob reads miss it and touch the disk.
        """
        self.queries += 1
        yield from self.server.cpu.execute(P.DB_QUERY_MI)
        if self.rng.random() < P.DB_DISK_PROBABILITY:
            yield from self.server.storage.read(content_bytes, buffered=True)


class WebServerNode:
    """A lighttpd + PHP web server with OS-level connection limits."""

    def __init__(self, sim: Simulation, server: Server, topology: Topology,
                 costs: P.ServiceCosts, limits: P.ConnectionLimits,
                 workload: P.WebWorkload, rng: random.Random,
                 cache_nodes: List[CacheNode],
                 db_nodes: List[DatabaseNode]):
        self.sim = sim
        self.server = server
        self.topology = topology
        self.costs = costs
        self.limits = limits
        self.workload = workload
        self.rng = rng
        self.cache_nodes = cache_nodes
        self.db_nodes = db_nodes
        self.ports = PortPool(sim, limits.port_pool, limits.time_wait_s)
        self.established = 0
        self.active_calls = 0
        #: Bumped by :meth:`reset` so connections that straddle a crash
        #: cannot tear down post-reboot state they no longer own.
        self.epoch = 0
        # Statistics.
        self.syn_drops = 0
        self.accepted = 0
        self.errors_500 = 0
        self.records: List[CallRecord] = []
        self.record_log_enabled = True
        # Resilience (opt-in via enable_resilience; all None/zero keeps
        # the node bit-identical to a build without the feature).
        self.resilience = None
        self.resilience_ledger = None
        self.shed_calls = 0
        self._shed_threshold: Optional[int] = None

    # -- resilience ------------------------------------------------------

    def enable_resilience(self, config, ledger) -> None:
        """Arm admission control (queue-depth load shedding).

        Beyond ``queue_fraction`` of the overload limit, new calls get
        a cheap 503 fast-fail instead of queueing toward the client's
        timeout — the shed reply costs microseconds of CPU where a
        queued call would hold a worker for seconds.
        """
        self.resilience = config
        self.resilience_ledger = ledger
        if config.shedding:
            self._shed_threshold = max(1, int(
                self.limits.call_queue_limit
                * config.admission_cfg.queue_fraction))

    # -- connection admission -------------------------------------------

    def try_accept(self) -> bool:
        """Admit a SYN if a connection slot and an ephemeral port exist."""
        if (self.sim.faults is not None
                and not self.sim.faults.is_up(self.server.name)):
            # A dead server answers nothing; the SYN goes unanswered.
            self.syn_drops += 1
            return False
        if self.established >= self.limits.max_connections:
            self.syn_drops += 1
            return False
        if not self.ports.try_acquire():
            self.syn_drops += 1
            return False
        self.established += 1
        self.accepted += 1
        return True

    def close_connection(self, epoch: Optional[int] = None) -> None:
        """Tear down an established connection; port enters TIME_WAIT.

        ``epoch`` (when given) must match the server's current epoch:
        a close for a connection that died with a previous incarnation
        of the server is a stale no-op, not a teardown of fresh state.
        """
        if epoch is not None and epoch != self.epoch:
            return
        self.established -= 1
        self.ports.release_after_time_wait()

    def reset(self) -> None:
        """Reboot: every connection and in-flight call is forgotten."""
        self.established = 0
        self.active_calls = 0
        self.ports = PortPool(self.sim, self.limits.port_pool,
                              self.limits.time_wait_s)
        self.epoch += 1

    # -- request handling ----------------------------------------------------

    def _pick_content(self) -> float:
        if self.rng.random() < self.workload.image_fraction:
            return P.IMAGE_REPLY_BYTES
        return P.NON_IMAGE_REPLY_BYTES

    def handle_call(self, client_name: str, ctx=None):
        """Process generator: serve one HTTP call and send the reply.

        Returns the :class:`CallRecord`; also appends it to the node's
        log when logging is enabled.  ``ctx`` is the caller's
        :class:`~repro.trace.SpanContext` (the client-side call span);
        when tracing is on, the request span becomes its child and the
        cache/db legs become children of the request.
        """
        sim = self.sim
        record = CallRecord(start=sim._now)
        trace = sim.trace
        if trace is not None:
            req_ctx = trace.child_context(ctx)
            rid = req_ctx.span_id
            record.trace_id = req_ctx.trace_id
        else:
            req_ctx = None
            rid = 0
        if (self._shed_threshold is not None
                and self.active_calls >= self._shed_threshold):
            # Admission control: fast-fail while there is still queue
            # headroom, so the balancer can retry elsewhere in
            # milliseconds instead of discovering overload at the
            # client-timeout horizon.
            yield from self._shed_reply(record, client_name, rid, trace,
                                        req_ctx)
            return record
        if self.active_calls >= self.limits.call_queue_limit:
            # Thread/FD exhaustion: answer 500 cheaply (Figures 4-6's
            # "server error beyond the concurrency cliff").
            yield from self._error_reply(record, client_name, rid, trace,
                                         req_ctx)
            return record
        self.active_calls += 1
        faults = sim.faults
        process = sim._active_process
        name = self.server.name
        rng = self.rng
        cpu_execute = self.server.cpu.execute
        message = self.topology.message
        costs = self.costs
        track_cpu = self.resilience is not None
        busy_time = self.server.cpu.busy_time
        if faults is not None:
            faults.bind(name, process)
        # The backend leg currently in flight, as ("cache"|"db", start,
        # node): on an interrupt its span is closed with an ``aborted``
        # tag instead of silently vanishing from the trace.
        leg = None
        try:
            content = self._pick_content()
            # Per-request work varies (page size, PHP branches, kernel
            # interrupts): an exponential factor (mean 1, cv 1) leaves
            # capacity unchanged but produces the M/G/c queueing growth
            # behind the paper's delay-vs-concurrency curves.
            work_factor = rng.expovariate(1.0)
            mi = work_factor * 0.4 * costs.request_base_mi
            yield from cpu_execute(mi)
            if track_cpu:
                record.cpu_s += busy_time(mi)
            # Cache leg (timed as the paper's web-server logs time it).
            cache_start = sim._now
            cache = rng.choice(self.cache_nodes)
            if trace is not None:
                leg = ("cache", cache_start, cache.server.name)
            if faults is not None and not faults.is_up(cache.server.name):
                # Dead memcached: the get times out client-side and the
                # request falls through to the database as a miss.
                yield P.CACHE_DEAD_TIMEOUT_S
                hit = False
            else:
                yield from message(name, cache.server.name,
                                   P.CACHE_KEY_BYTES)
                yield from cache.handle_get()
                hit = rng.random() < self.workload.cache_hit_ratio
                if hit:
                    yield from message(cache.server.name, name, content)
            yield from cpu_execute(costs.cache_client_mi)
            if track_cpu:
                record.cpu_s += busy_time(costs.cache_client_mi)
            record.cache_s = sim._now - cache_start
            if trace is not None:
                leg = None
                trace.complete("cache", cache_start, category="web",
                               node=cache.server.name,
                               ctx=trace.child_context(req_ctx),
                               req=rid, hit=hit)
            if not hit:
                db_start = sim._now
                db = rng.choice(self.db_nodes)
                if faults is not None and not faults.is_up(db.server.name):
                    # Fail over to any live database replica; with the
                    # whole tier down the page cannot be built at all.
                    live = [d for d in self.db_nodes
                            if faults.is_up(d.server.name)]
                    if not live:
                        yield from self._error_reply(record, client_name,
                                                     rid, trace, req_ctx)
                        return record
                    db = live[0]
                if trace is not None:
                    leg = ("db", db_start, db.server.name)
                yield from message(name, db.server.name, P.DB_QUERY_BYTES)
                yield from db.handle_query(content)
                yield from message(db.server.name, name, content)
                yield from cpu_execute(costs.db_client_mi)
                if track_cpu:
                    record.cpu_s += busy_time(costs.db_client_mi)
                record.db_s = sim._now - db_start
                if trace is not None:
                    leg = None
                    trace.complete("db", db_start, category="web",
                                   node=db.server.name,
                                   ctx=trace.child_context(req_ctx),
                                   req=rid)
            assemble_mi = (0.6 * costs.request_base_mi
                           + costs.per_reply_kb_mi * content / 1000.0)
            yield from cpu_execute(work_factor * assemble_mi)
            if track_cpu:
                record.cpu_s += busy_time(work_factor * assemble_mi)
            yield from message(name, client_name, content)
            record.total_s = sim._now - record.start
            if trace is not None:
                trace.complete("request", record.start, category="web",
                               node=name, ctx=req_ctx, req=rid,
                               status=record.status)
            self._log(record)
            return record
        except Interrupt as exc:
            # The web server died under this request; the client's
            # connection is dead (reported as a 503 service failure).
            record.status = 503
            record.total_s = sim._now - record.start
            if trace is not None:
                cause = exc.cause
                kind = getattr(cause, "kind", None) or (
                    type(cause).__name__ if cause is not None
                    else "interrupt")
                if leg is not None:
                    # Close the backend leg the fault cut short so the
                    # causal tree never holds a dangling span.
                    leg_name, leg_start, leg_node = leg
                    trace.complete(leg_name, leg_start, category="web",
                                   node=leg_node,
                                   ctx=trace.child_context(req_ctx),
                                   req=rid, aborted=kind)
                trace.complete("request", record.start, category="web",
                               node=name, ctx=req_ctx, req=rid, status=503,
                               aborted=kind)
            self._log(record)
            return record
        finally:
            if faults is not None:
                faults.unbind(name, process)
            self.active_calls -= 1

    def _shed_reply(self, record: CallRecord, client_name: str,
                    rid: int, trace, ctx=None):
        """Fast-fail one call under admission control and meter the cost."""
        self.shed_calls += 1
        record.shed = True
        record.status = 503
        ledger = self.resilience_ledger
        if ledger is not None:
            ledger.count("sheds")
            ledger.charge(
                "shed", self.server.name,
                self.server.cpu.busy_time(self.costs.error_mi),
                ledger.marginal_vcore_watts(self.server))
        yield from self.server.cpu.execute(self.costs.error_mi)
        yield from self.topology.message(
            self.server.name, client_name, P.ERROR_REPLY_BYTES)
        record.total_s = self.sim.now - record.start
        if trace is not None:
            trace.complete("request", record.start, category="web",
                           node=self.server.name, ctx=ctx, req=rid,
                           status=503, shed=True)
        self._log(record)

    def _error_reply(self, record: CallRecord, client_name: str,
                     rid: int, trace, ctx=None):
        """Answer 500 cheaply and log the failed call."""
        self.errors_500 += 1
        record.status = 500
        yield from self.server.cpu.execute(self.costs.error_mi)
        yield from self.topology.message(
            self.server.name, client_name, P.ERROR_REPLY_BYTES)
        record.total_s = self.sim.now - record.start
        if trace is not None:
            trace.complete("request", record.start, category="web",
                           node=self.server.name, ctx=ctx, req=rid,
                           status=500)
        self._log(record)

    def _log(self, record: CallRecord) -> None:
        if self.record_log_enabled:
            self.records.append(record)
