"""Calibrated cost model for the LLMP web stack (Section 5.1).

All service costs are in *million instructions* (MI) so the hardware
profiles' measured DMIPS convert them to per-platform time.  The
calibration anchors, each tied to a paper observation:

* Low-load response delay: ~9 ms on Edison vs ~1.6 ms on Dell (Table 7
  totals at 480 req/s) fixes the per-request CPU budgets.
* Peak utilisation (Section 5.1.2, 20 % images): 86 % CPU on Edison web
  servers at ~290 req/s each, and 45 % on Dell web servers at
  ~3500 req/s each.  Note the Dell's per-request budget is *larger* in
  MI — at thousands of requests per second per node, kernel TCP work,
  context switches and FastCGI hand-offs dominate, and the paper itself
  stresses that the measured capability gap (~100x) exceeds nameplate.
* Table 7's database-delay column fixes the MySQL client/server split.
* The port-pool and TIME_WAIT values generate Figure 11's 1/3/7 s SYN
  retransmission spikes on the Dell cluster (Section 5.1.2's analysis)
  while leaving the 24-server Edison web tier unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core import paperdata as paper


@dataclass(frozen=True)
class ServiceCosts:
    """Per-platform CPU costs (MI) of the web-serving code path."""

    #: lighttpd + PHP work to parse a request and build a reply.
    request_base_mi: float
    #: additional CPU per KB of reply (kernel copies, PHP string work).
    per_reply_kb_mi: float
    #: client-side memcached marshalling per lookup (on the web server).
    cache_client_mi: float
    #: client-side MySQL work per miss (connect + query + row decode).
    db_client_mi: float
    #: cost of emitting a 500 error page.
    error_mi: float = 0.2


#: Derivations (see module docstring):
#:   Edison 9 ms low-load total with 2.4 ms cache leg -> ~3.7 MI base;
#:   86 % CPU at 290 req/s/server -> base + per-KB * 10 KB ~= 4.5 MI.
#:   Dell 45 % CPU at ~3500 req/s/server -> ~16 MI effective per request.
EDISON_COSTS = ServiceCosts(
    request_base_mi=2.2, per_reply_kb_mi=0.12,
    cache_client_mi=1.5, db_client_mi=2.0)
DELL_COSTS = ServiceCosts(
    request_base_mi=11.0, per_reply_kb_mi=0.45,
    cache_client_mi=1.3, db_client_mi=1.5)

COSTS: Mapping[str, ServiceCosts] = {
    "edison": EDISON_COSTS, "dell": DELL_COSTS,
}

#: memcached CPU per GET, and MySQL CPU per query (both in MI; MySQL
#: runs on the shared Dell DB servers, 13.7 MI ~= 1.2 ms on a Xeon
#: thread — Table 7's Dell database delay minus the RTT).
CACHE_OP_MI = 0.6
DB_QUERY_MI = 13.7
#: Fraction of misses that touch the DB server's disk (image blobs not
#: in the buffer pool) and the bytes read when they do.
DB_DISK_PROBABILITY = 0.10
#: How long a PHP memcached client waits on a dead cache server before
#: treating the get as a miss (the client library's receive timeout;
#: only reachable under fault injection).
CACHE_DEAD_TIMEOUT_S = 0.05

#: Request/reply sizing.  The image-table mean reply is derived from
#: the paper's mix table: 0.9*1.5 KB + 0.1*B = 5.8 KB -> B ~= 44.5 KB,
#: consistent across the 6 %/10 %/20 % rows (~43 KB).
REQUEST_BYTES = 200.0
NON_IMAGE_REPLY_BYTES = 1500.0
IMAGE_REPLY_BYTES = 43000.0
ERROR_REPLY_BYTES = 500.0
CACHE_KEY_BYTES = 100.0
DB_QUERY_BYTES = 150.0


def mean_reply_bytes(image_fraction: float) -> float:
    """Average reply size for an image-query mix (matches S51 table)."""
    if not 0 <= image_fraction <= 1:
        raise ValueError("image_fraction must be in [0, 1]")
    return (1 - image_fraction) * NON_IMAGE_REPLY_BYTES \
        + image_fraction * IMAGE_REPLY_BYTES


@dataclass(frozen=True)
class ConnectionLimits:
    """Per-web-server OS/network resource limits (Section 5.1.1 knobs)."""

    #: Concurrently established connections (FastCGI children / fds).
    max_connections: int
    #: In-flight calls before the server answers 500 (thread exhaustion).
    call_queue_limit: int
    #: Ephemeral ports available after the range expansion, and the
    #: TIME_WAIT holding period.  The physical values (~40000 ports,
    #: 60 s) are scaled down together so short simulated windows reach
    #: the same steady state; the invariant that matters is their
    #: ratio — the sustainable connection rate of ~667 conn/s/server.
    #: The 2-server Dell web tier crosses that at high concurrency and
    #: under the one-connection-per-request urllib2 probes; 24 Edison
    #: servers never do (Section 5.1.2's port-resources argument).
    port_pool: int = 1000
    #: Seconds a port lingers in TIME_WAIT after close.
    time_wait_s: float = 1.5


#: Both platforms had fd limits raised (Section 5.1.1), so established
#: connections are plentiful; what is scarce is request *processing*
#: slots.  On a 1 GB Edison only ~tens of PHP FastCGI children fit, so
#: lighttpd answers 500 once ~96 calls are in flight — the per-server
#: bound behind "maximum concurrency scales down linearly with cluster
#: size".  A 16 GB Dell runs thousands of children and instead hits the
#: ephemeral-port wall first.
LIMITS: Mapping[str, ConnectionLimits] = {
    "edison": ConnectionLimits(max_connections=1024, call_queue_limit=96),
    "dell": ConnectionLimits(max_connections=8192, call_queue_limit=4096),
}

#: Static memory reservations (fraction of RAM) while serving, taken
#: from the Section 5.1.2 peak readings.
MEMORY_RESERVATION = {
    ("edison", "web"): 0.25, ("edison", "cache"): 0.54,
    ("dell", "web"): 0.50, ("dell", "cache"): 0.40,
}

#: Tuned single-server request capacity (req/s) used to pick httperf's
#: calls-per-connection the way the paper hand-tuned it: Edison web
#: servers saturate around 290-300 req/s (CPU), Dell around 3500
#: (kernel/TCP), giving both full clusters the same ~7000 req/s peak.
PER_SERVER_CAPACITY_RPS = {"edison": 295.0, "dell": 3550.0}


def workload_factor(image_fraction: float, hit_ratio: float) -> float:
    """Throughput derating for heavier mixes.

    Calibrated so 20 % images costs ~15 % of peak (Figure 6 vs Figure 4)
    and lower hit ratios cost a few percent (Figure 5).
    """
    image_term = 1.0 / (1.0 + 0.88 * image_fraction)
    hit_term = 1.0 / (1.0 + 0.12 * (paper.S51_CACHE_HIT_RATIOS[0] - hit_ratio))
    return image_term * hit_term


def tuned_calls_per_connection(concurrency: float, target_rps: float,
                               max_calls: int = 40,
                               min_calls: int = 5) -> int:
    """The paper's per-level httperf tuning, as a reproducible rule.

    ``min_calls`` reflects that httperf cannot shed load below a few
    calls per connection while keeping the reported concurrency at
    target: past the tier's capacity the offered rate exceeds it, which
    is exactly where the paper starts seeing 5xx errors (beyond 1024
    connections/s on Edison, beyond 2048 on Dell).
    """
    if concurrency <= 0 or target_rps <= 0:
        raise ValueError("concurrency and target_rps must be > 0")
    return max(min_calls, min(max_calls, round(target_rps / concurrency)))


@dataclass(frozen=True)
class WebWorkload:
    """One web-service operating point."""

    image_fraction: float = 0.0
    cache_hit_ratio: float = 0.93
    client_timeout_s: float = 10.0
    request_bytes: float = REQUEST_BYTES

    def __post_init__(self):
        if not 0 <= self.image_fraction <= 1:
            raise ValueError("image_fraction must be in [0, 1]")
        if not 0 <= self.cache_hit_ratio <= 1:
            raise ValueError("cache_hit_ratio must be in [0, 1]")

    @property
    def mean_reply_bytes(self) -> float:
        return mean_reply_bytes(self.image_fraction)
