"""A capacity-weighted load-balancer rotation over web backends.

The paper's HAProxy role is plain round-robin over identical servers;
a heterogeneous pool (Edisons next to an R620) needs *weighted*
dispatch or the Dell idles at Edison rates while Edisons melt.  This is
the smooth weighted round-robin of nginx/LVS: each pick advances every
eligible backend's current score by its weight, takes the highest, and
debits the winner by the total — perfectly deterministic (no RNG
draws, so it can sit on the bit-identity-pinned arrival path), and it
interleaves a weight-3550 Dell between weight-295 Edisons instead of
sending it long monopolising bursts.

Membership is dynamic: the autoscaler registers and deregisters
backends as it wakes and drains them, and — like the existing
round-robin path — backends whose outage has crossed the health-check
detection window are skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class _Entry:
    __slots__ = ("web", "weight", "current", "in_rotation")

    def __init__(self, web, weight: float):
        self.web = web
        self.weight = weight
        self.current = 0.0
        self.in_rotation = True


class WeightedRotation:
    """Smooth weighted round-robin with dynamic membership."""

    def __init__(self, sim):
        self.sim = sim
        self._entries: Dict[str, _Entry] = {}
        #: Backends served to callers, for distribution assertions.
        self.picks: Dict[str, int] = {}

    def add(self, web, weight: float) -> None:
        """Register ``web`` (a :class:`WebServerNode`) at ``weight``."""
        if weight <= 0:
            raise ValueError("weight must be > 0")
        name = web.server.name
        if name in self._entries:
            raise ValueError(f"backend {name!r} already registered")
        self._entries[name] = _Entry(web, weight)

    def set_in_rotation(self, name: str, in_rotation: bool) -> None:
        """Add or remove one backend from dispatch (state is kept)."""
        entry = self._entries[name]
        if entry.in_rotation == in_rotation:
            return
        entry.in_rotation = in_rotation
        # A re-registered backend starts from score zero: it should
        # blend back in at its weight's pace, not instantly absorb a
        # backlog of turns accrued while absent.
        entry.current = 0.0

    def in_rotation(self, name: str) -> bool:
        return self._entries[name].in_rotation

    def backends(self) -> List:
        """Every registered backend node, in registration order."""
        return [e.web for e in self._entries.values()]

    def active_names(self) -> List[str]:
        return [n for n, e in self._entries.items() if e.in_rotation]

    def total_active_weight(self) -> float:
        faults = self.sim.faults
        return sum(e.weight for n, e in self._entries.items()
                   if e.in_rotation
                   and (faults is None or not faults.detected_down(n)))

    def pick(self) -> Optional[object]:
        """The next backend, or None when nothing is dispatchable."""
        faults = self.sim.faults
        best: Optional[_Entry] = None
        total = 0.0
        for name, entry in self._entries.items():
            if not entry.in_rotation:
                continue
            if faults is not None and faults.detected_down(name):
                continue
            total += entry.weight
            entry.current += entry.weight
            if best is None or entry.current > best.current:
                best = entry
        if best is None:
            return None
        best.current -= total
        name = best.web.server.name
        self.picks[name] = self.picks.get(name, 0) + 1
        return best.web
