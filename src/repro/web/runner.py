"""High-level web experiment runners: concurrency sweeps for Figures 4-9."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core import paperdata as paper
from ..hardware import ServerSpec
from . import params as P
from .deployment import WebServiceDeployment
from .httperf import LevelResult


@dataclass(frozen=True)
class SweepResult:
    """One throughput/delay curve: a platform+scale across concurrency."""

    platform: str
    scale: str
    workload: P.WebWorkload
    levels: Tuple[LevelResult, ...]

    def peak_rps(self) -> float:
        """Highest error-free throughput (the paper excludes 5xx levels)."""
        clean = [l for l in self.levels if not l.has_server_errors]
        if not clean:
            return 0.0
        return max(l.requests_per_second for l in clean)

    def max_clean_concurrency(self) -> int:
        """Largest concurrency that produced no server errors."""
        clean = [l.concurrency for l in self.levels
                 if not l.has_server_errors]
        return max(clean) if clean else 0

    def mean_power_at_peak(self) -> float:
        clean = [l for l in self.levels if not l.has_server_errors]
        best = max(clean, key=lambda l: l.requests_per_second)
        return best.mean_power_w


def sweep_concurrency(platform: str, scale: str = "full",
                      workload: Optional[P.WebWorkload] = None,
                      levels: Sequence[int] = paper.S51_CONCURRENCY_LEVELS,
                      duration: float = 4.0, warmup: float = 1.0,
                      seed: int = 20160901,
                      edison_spec: Optional[ServerSpec] = None) -> SweepResult:
    """Run one full Figure 4/7-style curve.

    Each level gets a fresh deployment (clean TIME_WAIT state), exactly
    as the paper restarts each 3-minute test.
    """
    workload = workload if workload is not None else P.WebWorkload()
    results: List[LevelResult] = []
    for concurrency in levels:
        deployment = WebServiceDeployment(
            platform, scale, workload, seed=seed + concurrency,
            edison_spec=edison_spec)
        for node in deployment.web_nodes:
            node.record_log_enabled = False
        results.append(deployment.run_level(
            concurrency, duration=duration, warmup=warmup))
    return SweepResult(platform=platform, scale=scale, workload=workload,
                       levels=tuple(results))


def energy_efficiency_ratio(edison: SweepResult, dell: SweepResult) -> float:
    """Peak requests-per-joule ratio, Edison over Dell (the 3.5x claim)."""
    edison_rpj = edison.peak_rps() / edison.mean_power_at_peak()
    dell_rpj = dell.peak_rps() / dell.mean_power_at_peak()
    return edison_rpj / dell_rpj
