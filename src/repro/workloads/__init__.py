"""Synthetic workload data: text corpus, logs, terasort records, wiki DB."""

from .datasets import Dataset, DatasetFile, split_evenly
from .loggen import LogGenerator, logcount_dataset
from .teragen import TeragenGenerator, terasort_dataset
from .textgen import ZipfTextGenerator, wordcount_dataset
from .wikidb import TableSpec, WikiDatabase, build_tables, table_weights

__all__ = [
    "Dataset", "DatasetFile", "LogGenerator", "TableSpec",
    "TeragenGenerator", "WikiDatabase", "ZipfTextGenerator", "build_tables",
    "logcount_dataset", "split_evenly", "table_weights", "terasort_dataset",
    "wordcount_dataset",
]
