"""Dataset descriptions shared by all workload generators.

The simulator schedules work from dataset *metadata* (file sizes, record
counts, key statistics); generators can also materialise real sample
bytes for the examples and for tests that want to run the actual map
logic on actual data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class DatasetFile:
    """One input file as stored in (simulated) HDFS."""

    name: str
    size_bytes: int
    records: int


@dataclass(frozen=True)
class Dataset:
    """A collection of input files plus content statistics."""

    name: str
    files: Tuple[DatasetFile, ...]
    #: Mean serialised size of one map-output record for this data.
    map_output_record_bytes: float
    #: Map output bytes per input byte (before any combiner).
    map_output_ratio: float
    #: Fraction of map-output volume surviving a combiner pass.
    combine_survival: float

    def __post_init__(self):
        if not self.files:
            raise ValueError("a dataset needs at least one file")
        if self.map_output_ratio < 0 or not 0 < self.combine_survival <= 1:
            raise ValueError("invalid output/combine ratios")

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files)

    @property
    def total_records(self) -> int:
        return sum(f.records for f in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)


def split_evenly(total_bytes: int, count: int, name: str,
                 bytes_per_record: float) -> Tuple[DatasetFile, ...]:
    """Divide ``total_bytes`` into ``count`` near-equal files."""
    if count < 1 or total_bytes < count:
        raise ValueError("need total_bytes >= count >= 1")
    base = total_bytes // count
    remainder = total_bytes - base * count
    files: List[DatasetFile] = []
    for i in range(count):
        size = base + (1 if i < remainder else 0)
        files.append(DatasetFile(
            name=f"{name}-{i:05d}", size_bytes=size,
            records=max(1, round(size / bytes_per_record))))
    return tuple(files)
