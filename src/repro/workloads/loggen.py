"""Yarn/Hadoop-style log files for the logcount jobs.

Logcount extracts a ``<'YYYY-MM-DD LEVEL', 1>`` pair per log line and
counts occurrences.  Log lines are long (~120 bytes) compared to the
tiny extracted key, so the map output is a small fraction of the input
and a combiner pass collapses each split to a handful of distinct
(date, level) keys.
"""

from __future__ import annotations

import random
from typing import List

from ..core import paperdata as paper
from .datasets import Dataset, split_evenly

#: Mean bytes of one log line.
MEAN_LOG_LINE_BYTES = 120.0
#: Serialised ``<date level, 1>`` record size.
LOG_KEY_RECORD_BYTES = 20.0
#: Distinct (date, level) keys per split are a few dozen, so the
#: combiner keeps almost nothing of the map output volume.
COMBINE_SURVIVAL = 0.002

LEVELS = ("INFO", "WARN", "ERROR", "DEBUG")


def logcount_dataset(total_bytes: int = paper.LOGCOUNT_INPUT_BYTES,
                     files: int = paper.LOGCOUNT_INPUT_FILES) -> Dataset:
    """Describe the paper's 1 GB / 500-file Yarn log input."""
    return Dataset(
        name="logcount-logs",
        files=split_evenly(total_bytes, files, "log",
                           bytes_per_record=MEAN_LOG_LINE_BYTES),
        map_output_record_bytes=LOG_KEY_RECORD_BYTES,
        map_output_ratio=LOG_KEY_RECORD_BYTES / MEAN_LOG_LINE_BYTES,
        combine_survival=COMBINE_SURVIVAL,
    )


class LogGenerator:
    """Materialises sample log lines (for examples and logic tests)."""

    def __init__(self, seed: int = 7, days: int = 30):
        if days < 1:
            raise ValueError("days must be >= 1")
        self._rng = random.Random(seed)
        self._days = days

    def line(self) -> str:
        """One synthetic log line."""
        day = self._rng.randrange(self._days)
        level = self._rng.choices(LEVELS, weights=(80, 10, 5, 5))[0]
        component = self._rng.choice((
            "nodemanager.NodeStatusUpdater", "resourcemanager.scheduler",
            "hdfs.DataNode", "mapreduce.task.reduce.Fetcher"))
        detail = "x" * self._rng.randrange(40, 90)
        return (f"2016-02-{day + 1:02d} {level} "
                f"[{component}] {detail}")

    def lines(self, count: int) -> List[str]:
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.line() for _ in range(count)]

    @staticmethod
    def extract_key(line: str) -> str:
        """The logcount map function: '<date> <LEVEL>'."""
        date, level = line.split(" ", 2)[:2]
        return f"{date} {level}"
