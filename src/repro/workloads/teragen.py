"""Teragen-style records for the terasort job.

Terasort operates on fixed 100-byte records with 10-byte keys; the map
output is the input itself (identity map re-keyed), so the output ratio
is 1.0 and a combiner would be useless.
"""

from __future__ import annotations

import random
from typing import List

from ..core import paperdata as paper
from .datasets import Dataset, split_evenly

#: The classic terasort record layout: 10-byte key + 90-byte payload.
RECORD_BYTES = 100
KEY_BYTES = 10


def terasort_dataset(total_bytes: int = paper.TERASORT_INPUT_BYTES,
                     files: int = paper.TERASORT_MAPS) -> Dataset:
    """Describe the scaled-down 10 GB terasort input.

    The paper reports 168 input files/map tasks for its 10 GB run with
    64 MB blocks (~60 MB of records per file).
    """
    return Dataset(
        name="terasort-records",
        files=split_evenly(total_bytes, files, "teragen",
                           bytes_per_record=RECORD_BYTES),
        map_output_record_bytes=float(RECORD_BYTES),
        map_output_ratio=1.0,       # identity map
        combine_survival=1.0,       # no combiner can shrink a sort
    )


class TeragenGenerator:
    """Materialises sample terasort records (deterministic per seed)."""

    def __init__(self, seed: int = 7):
        self._rng = random.Random(seed)

    def record(self) -> bytes:
        key = bytes(self._rng.randrange(32, 127) for _ in range(KEY_BYTES))
        payload = b"%088d\r\n" % self._rng.randrange(10 ** 18)
        record = key + payload
        return record[:RECORD_BYTES].ljust(RECORD_BYTES, b"0")

    def records(self, count: int) -> List[bytes]:
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.record() for _ in range(count)]

    @staticmethod
    def key_of(record: bytes) -> bytes:
        """The terasort partitioning/sort key of one record."""
        return record[:KEY_BYTES]
