"""Zipf-distributed text corpus for the wordcount jobs.

The paper's wordcount input is 200 files totalling 1 GB with ~10-byte
map-output records.  Natural-language word frequencies are Zipfian, so
the generator draws words from a Zipf(s=1.07) distribution over a
synthetic vocabulary; that fixes both the records-per-byte and the
combiner's survival ratio (unique words per split vs total words).
"""

from __future__ import annotations

import random
from typing import List

from ..core import paperdata as paper
from .datasets import Dataset, split_evenly

#: Mean word length (letters) plus the separating space.
MEAN_WORD_BYTES = 6.0
#: Zipf exponent for word frequencies.
ZIPF_EXPONENT = 1.07
#: Vocabulary size of the synthetic corpus.
VOCABULARY = 200_000
#: Fraction of map-output volume a combiner pass keeps: with ~5 MB
#: splits (~870 k words) a Zipf corpus has ~35 k distinct words, so a
#: sum-combiner keeps ~4 % of the records.
COMBINE_SURVIVAL = 0.04


def wordcount_dataset(total_bytes: int = paper.WORDCOUNT_INPUT_BYTES,
                      files: int = paper.WORDCOUNT_INPUT_FILES) -> Dataset:
    """Describe the paper's 1 GB / 200-file wordcount input."""
    return Dataset(
        name="wordcount-text",
        files=split_evenly(total_bytes, files, "text",
                           bytes_per_record=MEAN_WORD_BYTES),
        map_output_record_bytes=paper.WORDCOUNT_MAP_OUTPUT_RECORD_BYTES,
        # Each ~6-byte word becomes a ~10-byte <word, 1> record.
        map_output_ratio=paper.WORDCOUNT_MAP_OUTPUT_RECORD_BYTES
        / MEAN_WORD_BYTES,
        combine_survival=COMBINE_SURVIVAL,
    )


class ZipfTextGenerator:
    """Materialises sample corpus text (for examples and logic tests)."""

    def __init__(self, seed: int = 7, vocabulary: int = 2000):
        if vocabulary < 1:
            raise ValueError("vocabulary must be >= 1")
        self._rng = random.Random(seed)
        self._weights = [1.0 / (rank ** ZIPF_EXPONENT)
                         for rank in range(1, vocabulary + 1)]
        self._words = [self._make_word(i) for i in range(vocabulary)]

    def _make_word(self, index: int) -> str:
        rng = random.Random(index * 2654435761 % 2 ** 32)
        length = max(2, min(12, int(rng.gauss(5, 2))))
        return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz")
                       for _ in range(length))

    def words(self, count: int) -> List[str]:
        """Draw ``count`` Zipf-distributed words."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return self._rng.choices(self._words, weights=self._weights, k=count)

    def text(self, approx_bytes: int) -> str:
        """A text blob of roughly ``approx_bytes`` bytes."""
        count = max(1, round(approx_bytes / MEAN_WORD_BYTES))
        return " ".join(self.words(count))
