"""Synthetic stand-in for the paper's wikipedia + crawled-image database.

The real deployment imported wikipedia dumps plus images crawled from
Amazon/Newegg/Flickr (20 GB, 15 tables, 4 with ~30 KB image blobs).
Only the *statistics* of that data affect any measured quantity — table
weights drive the image-query fraction, row sizes drive reply sizes —
so the stand-in reproduces those statistics and can materialise
deterministic sample rows.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Tuple

TOTAL_BYTES = 20 * 1000 ** 3
TABLE_COUNT = 15
IMAGE_TABLE_COUNT = 4
MEAN_IMAGE_BYTES = 30_000
MEAN_TEXT_ROW_BYTES = 1_200


@dataclass(frozen=True)
class TableSpec:
    """One of the 15 tables."""

    name: str
    rows: int
    mean_row_bytes: float
    is_image: bool


def build_tables(total_bytes: int = TOTAL_BYTES) -> Tuple[TableSpec, ...]:
    """The 15-table layout: 11 scalar tables, 4 image-blob tables."""
    image_share = 0.7            # images dominate the 20 GB footprint
    image_bytes = total_bytes * image_share / IMAGE_TABLE_COUNT
    text_bytes = total_bytes * (1 - image_share) / (TABLE_COUNT
                                                    - IMAGE_TABLE_COUNT)
    tables: List[TableSpec] = []
    for i in range(TABLE_COUNT - IMAGE_TABLE_COUNT):
        tables.append(TableSpec(
            name=f"wiki_{i}", rows=round(text_bytes / MEAN_TEXT_ROW_BYTES),
            mean_row_bytes=MEAN_TEXT_ROW_BYTES, is_image=False))
    for i in range(IMAGE_TABLE_COUNT):
        tables.append(TableSpec(
            name=f"images_{i}", rows=round(image_bytes / MEAN_IMAGE_BYTES),
            mean_row_bytes=MEAN_IMAGE_BYTES, is_image=True))
    return tuple(tables)


def table_weights(image_fraction: float,
                  tables: Tuple[TableSpec, ...]) -> List[float]:
    """Selection weights giving image tables ``image_fraction`` of hits.

    This is the paper's mechanism for controlling workload heaviness:
    "we assign different weights to image tables and non-image tables
    to control their probability to be selected."
    """
    if not 0 <= image_fraction <= 1:
        raise ValueError("image_fraction must be in [0, 1]")
    n_image = sum(1 for t in tables if t.is_image)
    n_text = len(tables) - n_image
    if n_image == 0 or n_text == 0:
        raise ValueError("need both image and non-image tables")
    return [image_fraction / n_image if t.is_image
            else (1 - image_fraction) / n_text
            for t in tables]


class WikiDatabase:
    """Deterministic sample-row materialisation."""

    def __init__(self, seed: int = 7,
                 tables: Tuple[TableSpec, ...] = None):
        self.tables = tables if tables is not None else build_tables()
        self._seed = seed

    def row_bytes(self, table: TableSpec, row: int) -> int:
        """Deterministic size of one row (log-normal-ish spread)."""
        rng = random.Random(hash((self._seed, table.name, row)) & 0xFFFFFFFF)
        spread = rng.lognormvariate(0, 0.4)
        return max(64, round(table.mean_row_bytes * spread))

    def row_payload(self, table: TableSpec, row: int) -> bytes:
        """Deterministic pseudo-content for one row."""
        size = self.row_bytes(table, row)
        digest = hashlib.sha256(
            f"{self._seed}:{table.name}:{row}".encode()).digest()
        return (digest * (size // len(digest) + 1))[:size]
