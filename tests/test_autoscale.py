"""Tests for repro.autoscale: policies, pools, actuation, the hybrid
deployment, and the load shapes that drive the three-arm day."""

from dataclasses import asdict

import pytest

from repro.autoscale import (ACTIVE, BOOTING, DRAINING, OFF, ActuationConfig,
                             AutoscaleConfig, AutoscaleLedger, FleetActuator,
                             FleetPool, HybridWebDeployment, PolicyConfig,
                             PoolNode, PredictivePolicy, ReactivePolicy,
                             make_policy)
from repro.cluster import hybrid_web_cluster
from repro.sim import Simulation
from repro.telemetry import Telemetry
from repro.web import (DiurnalShape, FlashCrowd, ShapedLoad,
                       WebServiceDeployment, WeightedRotation)


# -- shared fakes -------------------------------------------------------------

class FakeServer:
    def __init__(self, name):
        self.name = name


class FakeWeb:
    def __init__(self, name):
        self.server = FakeServer(name)


class FakeFaults:
    """Just enough fault plane for the rotation's health checks."""

    def __init__(self, down=()):
        self.down = set(down)

    def detected_down(self, name):
        return name in self.down


def small_hybrid(**kwargs):
    kwargs.setdefault("edison_web", 2)
    kwargs.setdefault("dell_web", 1)
    kwargs.setdefault("cache", 1)
    kwargs.setdefault("seed", 11)
    return HybridWebDeployment(**kwargs)


# -- config -------------------------------------------------------------------

def test_policy_config_validation():
    with pytest.raises(ValueError):
        PolicyConfig(kind="psychic")
    with pytest.raises(ValueError):
        PolicyConfig(low_utilization=0.8, high_utilization=0.4)
    with pytest.raises(ValueError):
        PolicyConfig(target_utilization=0.9)      # outside the band
    with pytest.raises(ValueError):
        PolicyConfig(eval_interval_s=0.0)
    with pytest.raises(ValueError):
        PolicyConfig(headroom=0.5)


def test_actuation_config_validation():
    with pytest.raises(ValueError):
        ActuationConfig(boot_s={"edison": -1.0})
    with pytest.raises(ValueError):
        ActuationConfig(min_active=0)
    with pytest.raises(ValueError):
        ActuationConfig(drain_poll_s=0.0)


def test_autoscale_config_roundtrip():
    cfg = AutoscaleConfig.predictive(target_utilization=0.5,
                                     low_utilization=0.3,
                                     high_utilization=0.7,
                                     lookahead_s=9.0, headroom=1.2)
    again = AutoscaleConfig.from_dict(cfg.to_dict())
    assert again == cfg
    assert AutoscaleConfig.from_dict(
        AutoscaleConfig.disabled().to_dict()) == AutoscaleConfig.disabled()


# -- pool planning ------------------------------------------------------------

def test_pool_plan_order_prefers_efficiency():
    deployment = small_hybrid()
    order = [n.name for n in deployment.pool.plan_order]
    # Edisons (~175 rps/W) come before the Dell (~32 rps/W).
    assert order == ["web-0", "web-1", "web-2"]
    assert deployment.pool.by_name["web-2"].platform == "dell"


def test_pool_greedy_cover_and_min_active():
    deployment = small_hybrid()
    pool = deployment.pool
    edison = pool.by_name["web-0"].capacity_rps
    # Tiny demand: min_active floor holds one node.
    assert [n.name for n in pool.plan_active_set(1.0)] == ["web-0"]
    # Demand beyond one Edison pulls in the second; beyond both, the
    # Dell joins.
    assert len(pool.plan_active_set(edison + 1.0)) == 2
    assert len(pool.plan_active_set(2 * edison + 1.0)) == 3
    # min_active beats the demand-derived count.
    assert len(pool.plan_active_set(1.0, min_active=3)) == 3


def test_pool_committed_capacity_counts_booting():
    deployment = small_hybrid()
    pool = deployment.pool
    full = pool.committed_capacity_rps()
    pool.by_name["web-0"].state = BOOTING
    assert pool.committed_capacity_rps() == pytest.approx(full)
    pool.by_name["web-0"].state = OFF
    assert pool.committed_capacity_rps() < full


def test_pool_validation():
    with pytest.raises(ValueError):
        FleetPool([])
    with pytest.raises(ValueError):
        PoolNode(FakeWeb("x"), capacity_rps=0.0)


# -- policies -----------------------------------------------------------------

BAND = PolicyConfig(target_utilization=0.6, low_utilization=0.4,
                    high_utilization=0.8, cooldown_s=10.0)


def test_reactive_holds_inside_hysteresis_band():
    policy = ReactivePolicy(BAND)
    # 60/100 = 0.6 utilisation: inside the band, hold.
    assert policy.decide(0.0, 60.0, 100.0) is None
    assert policy.decide(0.0, 79.9, 100.0) is None
    assert policy.decide(0.0, 40.1, 100.0) is None


def test_reactive_scales_up_without_cooldown():
    policy = ReactivePolicy(BAND)
    # Two consecutive breaches seconds apart both act: scale-up is
    # never cooldown-gated.
    assert policy.decide(0.0, 90.0, 100.0) == pytest.approx(150.0)
    assert policy.decide(1.0, 95.0, 100.0) == pytest.approx(95.0 / 0.6)


def test_reactive_scale_down_respects_cooldown():
    policy = ReactivePolicy(BAND)
    assert policy.decide(0.0, 90.0, 100.0) is not None     # scale up
    # Utilisation collapses immediately: the down-scale must wait out
    # the cooldown from that last action.
    assert policy.decide(2.0, 10.0, 100.0) is None
    assert policy.decide(9.0, 10.0, 100.0) is None
    assert policy.decide(10.0, 12.0, 100.0) == pytest.approx(20.0)


def test_reactive_boots_an_empty_fleet():
    policy = ReactivePolicy(BAND)
    assert policy.decide(0.0, 30.0, 0.0) == pytest.approx(50.0)


def test_predictive_lookahead_adds_demand_on_ramps():
    cfg = PolicyConfig(kind="predictive", target_utilization=0.6,
                       low_utilization=0.4, high_utilization=0.8,
                       history_s=30.0)
    policy = PredictivePolicy(cfg, default_lookahead_s=10.0)
    # A clean 5 rps/s ramp: slope is exact, so the demand signal runs
    # one lookahead (50 rps) ahead of the measured rate.
    for t in range(5):
        demand = policy.demand_rps(float(t), 100.0 + 5.0 * t)
    assert demand == pytest.approx(120.0 + 50.0)
    # Declines are never extrapolated: demand floors at the measured
    # rate instead of shedding on a forecast.
    policy2 = PredictivePolicy(cfg, default_lookahead_s=10.0)
    for t in range(5):
        demand = policy2.demand_rps(float(t), 200.0 - 5.0 * t)
    assert demand == pytest.approx(180.0)


def test_predictive_history_trimmed_and_cfg_lookahead_wins():
    cfg = PolicyConfig(kind="predictive", history_s=3.0, lookahead_s=7.0)
    policy = PredictivePolicy(cfg, default_lookahead_s=99.0)
    assert policy.lookahead_s == 7.0
    for t in range(10):
        policy.demand_rps(float(t), 10.0)
    assert all(t >= 9.0 - 3.0 for t, _ in policy.history)


def test_make_policy_dispatch():
    assert isinstance(make_policy(PolicyConfig(kind="reactive")),
                      ReactivePolicy)
    predictive = make_policy(PolicyConfig(kind="predictive"), 4.0)
    assert isinstance(predictive, PredictivePolicy)
    assert predictive.lookahead_s == 4.0


# -- weighted rotation --------------------------------------------------------

def test_rotation_distributes_by_weight():
    sim = Simulation()
    rotation = WeightedRotation(sim)
    rotation.add(FakeWeb("a"), 1.0)
    rotation.add(FakeWeb("b"), 3.0)
    for _ in range(400):
        rotation.pick()
    assert rotation.picks == {"a": 100, "b": 300}


def test_rotation_smooth_interleaving():
    # Smooth WRR spreads the heavy backend out instead of bursting:
    # with weights 1 and 3 the light backend is never starved longer
    # than one full cycle.
    sim = Simulation()
    rotation = WeightedRotation(sim)
    rotation.add(FakeWeb("a"), 1.0)
    rotation.add(FakeWeb("b"), 3.0)
    sequence = [rotation.pick().server.name for _ in range(8)]
    assert sequence.count("a") == 2
    assert "aa" not in "".join(sequence)


def test_rotation_deregistration_and_return():
    sim = Simulation()
    rotation = WeightedRotation(sim)
    rotation.add(FakeWeb("a"), 1.0)
    rotation.add(FakeWeb("b"), 1.0)
    rotation.set_in_rotation("b", False)
    assert rotation.total_active_weight() == 1.0
    assert [rotation.pick().server.name for _ in range(4)] == ["a"] * 4
    rotation.set_in_rotation("b", True)
    names = {rotation.pick().server.name for _ in range(2)}
    assert names == {"a", "b"}


def test_rotation_skips_detected_down_backends():
    sim = Simulation()
    sim.faults = FakeFaults(down={"a"})
    rotation = WeightedRotation(sim)
    rotation.add(FakeWeb("a"), 10.0)
    rotation.add(FakeWeb("b"), 1.0)
    assert rotation.pick().server.name == "b"
    sim.faults = FakeFaults(down={"a", "b"})
    assert rotation.pick() is None
    assert rotation.total_active_weight() == 0.0


def test_rotation_rejects_duplicates_and_bad_weights():
    rotation = WeightedRotation(Simulation())
    rotation.add(FakeWeb("a"), 1.0)
    with pytest.raises(ValueError):
        rotation.add(FakeWeb("a"), 2.0)
    with pytest.raises(ValueError):
        rotation.add(FakeWeb("b"), 0.0)


# -- load shapes --------------------------------------------------------------

def test_diurnal_shape_trough_and_peak():
    shape = DiurnalShape(base_rps=100.0, peak_rps=500.0, period_s=100.0)
    assert shape.rate(0.0) == pytest.approx(100.0)       # trough
    assert shape.rate(50.0) == pytest.approx(500.0)      # peak
    assert shape.rate(100.0) == pytest.approx(100.0)     # next trough
    for t in range(0, 101, 7):
        assert 100.0 - 1e-9 <= shape.rate(float(t)) <= 500.0 + 1e-9


def test_flash_crowd_factor_envelope():
    flash = FlashCrowd(at_s=10.0, ramp_s=5.0, hold_s=5.0, decay_s=5.0,
                       multiplier=3.0)
    assert flash.factor(9.9) == 1.0
    assert flash.factor(12.5) == pytest.approx(2.0)      # mid-ramp
    assert flash.factor(17.0) == pytest.approx(3.0)      # holding
    assert flash.factor(22.5) == pytest.approx(2.0)      # mid-decay
    assert flash.factor(30.0) == 1.0


def test_shaped_load_product_and_bound_and_roundtrip():
    shape = ShapedLoad(
        DiurnalShape(base_rps=100.0, peak_rps=400.0, period_s=100.0),
        flashes=(FlashCrowd(at_s=40.0, ramp_s=5.0, hold_s=10.0,
                            decay_s=5.0, multiplier=2.0),))
    assert shape.rate(50.0) == pytest.approx(800.0)
    assert shape.peak_bound() == pytest.approx(800.0)
    for t in range(0, 101, 3):
        assert shape.rate(float(t)) <= shape.peak_bound() + 1e-9
    assert ShapedLoad.from_dict(shape.to_dict()) == shape


# -- the hybrid cluster and deployment ----------------------------------------

def test_hybrid_cluster_layout():
    sim = Simulation()
    cluster = hybrid_web_cluster(sim, edison_web=2, dell_web=1, cache=1)
    assert cluster.servers["web-0"].platform == "edison"
    assert cluster.servers["web-1"].platform == "edison"
    assert cluster.servers["web-2"].platform == "dell"
    assert cluster.servers["cache-0"].platform == "edison"
    metered = {s.name for s in cluster.metered_servers}
    assert metered == {"web-0", "web-1", "web-2", "cache-0"}
    with pytest.raises(ValueError):
        hybrid_web_cluster(sim, edison_web=0, dell_web=0, cache=1)


def test_hybrid_deployment_static_by_default():
    deployment = small_hybrid()
    assert deployment.platform == "hybrid"
    assert deployment.controller is None
    assert deployment.ledger is None
    assert deployment.target_rps() > 0
    # Disabled config is indistinguishable from no config.
    disabled = small_hybrid(autoscale=AutoscaleConfig.disabled())
    assert disabled.controller is None and disabled.ledger is None


# -- actuation ordering -------------------------------------------------------

def drive(deployment):
    """An actuator wired to a real injector and rotation."""
    injector = deployment._ensure_injector()
    ledger = AutoscaleLedger()
    actuator = FleetActuator(deployment.sim, injector, deployment.rotation,
                             ActuationConfig(), ledger)
    return injector, ledger, actuator


def test_power_off_deregisters_then_drains_then_suspends():
    deployment = small_hybrid()
    injector, ledger, actuator = drive(deployment)
    node = deployment.pool.by_name["web-0"]
    actuator.power_off(node)
    # Deregistration is synchronous; the suspend is not.
    assert not deployment.rotation.in_rotation("web-0")
    assert node.state == DRAINING
    assert injector.is_up("web-0")
    deployment.sim.run(until=5.0)
    assert node.state == OFF
    assert not injector.is_up("web-0")
    assert [(a.action, a.node) for a in ledger.actions] == [
        ("drain", "web-0"), ("off", "web-0")]
    # No connections were open, so the drain completed on the first
    # check: nothing lingered, nothing is billed.
    assert ledger.drain_joules == 0.0
    assert ledger.counters["drain_timeouts"] == 0


def test_power_on_boots_before_serving():
    deployment = small_hybrid()
    injector, ledger, actuator = drive(deployment)
    node = deployment.pool.by_name["web-0"]
    actuator.power_off(node)
    deployment.sim.run(until=5.0)
    actuator.power_on(node)
    assert node.state == BOOTING
    assert not deployment.rotation.in_rotation("web-0")
    deployment.sim.run(until=5.0 + 7.9)      # Edison boots in 8 s
    assert node.state == BOOTING
    deployment.sim.run(until=5.0 + 8.1)
    assert node.state == ACTIVE
    assert deployment.rotation.in_rotation("web-0")
    assert injector.is_up("web-0")
    order = [a.action for a in ledger.actions]
    assert order == ["drain", "off", "boot", "serve"]
    serve, boot = ledger.actions[-1], ledger.actions[-2]
    assert serve.time - boot.time == pytest.approx(8.0)
    assert ledger.boot_joules == pytest.approx(
        8.0 * node.idle_watts)


def test_actuator_rejects_wrong_state_transitions():
    deployment = small_hybrid()
    _injector, _ledger, actuator = drive(deployment)
    node = deployment.pool.by_name["web-0"]
    with pytest.raises(RuntimeError):
        actuator.power_on(node)          # already ACTIVE
    actuator.power_off(node)
    with pytest.raises(RuntimeError):
        actuator.power_off(node)         # already DRAINING


# -- suspended nodes: zero watts, no scrape targets ---------------------------

def test_suspended_node_draws_zero_watts_and_vanishes_from_scrapes():
    deployment = small_hybrid()
    telemetry = Telemetry(interval=0.5)
    telemetry.attach_web(deployment, until=6.0)
    injector, _ledger, actuator = drive(deployment)
    server = deployment.cluster.servers["web-1"]

    actuator.power_off(deployment.pool.by_name["web-1"])
    deployment.sim.run(until=6.0)
    # Admin-suspended: the fault plane reports it down, bills 0 W...
    assert not injector.is_up("web-1")
    assert injector.node_watts(server, server.utilization_now()) == 0.0
    # ...and the node agent stopped scraping it, so its "up" series
    # goes silent while the live peers keep reporting.
    [(_, up_suspended)] = telemetry.db.select("up", node="web-1")
    [(_, up_alive)] = telemetry.db.select("up", node="web-0")
    assert up_suspended.times[-1] <= 1.0      # only pre-suspend samples
    assert up_alive.times[-1] >= 5.0
    # A booting node draws idle watts, not zero and not full tilt.
    injector.admin_begin_boot("web-1")
    watts = injector.node_watts(server, server.utilization_now())
    assert watts == pytest.approx(server.spec.power.min_w)


# -- the closed loop ----------------------------------------------------------

def test_controller_scales_up_from_tsdb_signal():
    deployment = small_hybrid(autoscale=AutoscaleConfig.reactive())
    telemetry = Telemetry()
    deployment.telemetry = telemetry     # controller reads only the TSDB
    controller = deployment.prepare_autoscaler(initial_rps=100.0)
    pool = deployment.pool
    # One Edison covers 100/0.6 rps; the rest were parked pre-run.
    assert pool.states() == {"web-0": ACTIVE, "web-1": OFF, "web-2": OFF}
    assert not deployment.rotation.in_rotation("web-1")
    # Synthesise a hot request counter for the surviving node: ~290
    # rps, utilisation ~0.98 over 295 rps capacity.
    for t in (0.0, 1.0, 2.0):
        telemetry.db.record(t, "web_requests_total", 290.0 * t,
                            node="web-0")
    deployment.sim.run(until=2.5)        # one eval at t=2.0
    assert controller.ledger.counters["boots"] >= 1
    assert pool.by_name["web-1"].state == BOOTING
    deployment.sim.run(until=11.0)       # Edison boot (8 s) lands
    assert pool.by_name["web-1"].state == ACTIVE
    assert deployment.rotation.in_rotation("web-1")
    # The controller journals its own decisions into the TSDB.
    assert telemetry.db.select("autoscale_offered_rps")
    assert telemetry.db.select("autoscale_desired_rps")


def test_controller_requires_telemetry_and_enabled_config():
    deployment = small_hybrid(autoscale=AutoscaleConfig.reactive())
    with pytest.raises(ValueError):
        deployment.prepare_autoscaler(initial_rps=10.0)   # no telemetry
    static = small_hybrid()
    with pytest.raises(RuntimeError):
        static.prepare_autoscaler(initial_rps=10.0)       # not enabled


# -- end-to-end days ----------------------------------------------------------

DAY = ShapedLoad(DiurnalShape(base_rps=40.0, peak_rps=240.0, period_s=16.0))


def test_static_shaped_day_runs_and_counts():
    deployment = WebServiceDeployment("edison", "1/8", seed=5)
    level = deployment.run_shaped(DAY, 8.0, calls=4)
    assert level.ok_calls > 0
    assert level.concurrency == 0
    assert level.window_s == pytest.approx(8.0)


def test_hybrid_day_off_path_is_bit_identical():
    def digest(autoscale):
        deployment = small_hybrid(autoscale=autoscale)
        level = deployment.run_day(DAY, 8.0, calls=4)
        return asdict(level), deployment.meter.energy_joules()

    assert digest(None) == digest(AutoscaleConfig.disabled())


def test_autoscaled_hybrid_day_saves_energy():
    def run(autoscale):
        deployment = small_hybrid(autoscale=autoscale)
        if autoscale is not None:
            telemetry = Telemetry()
            telemetry.attach_web(deployment, until=20.0)
        level = deployment.run_day(DAY, 20.0, calls=4)
        return deployment, level

    static, static_level = run(None)
    scaled, scaled_level = run(AutoscaleConfig.reactive(
        eval_interval_s=1.0, metric_window_s=3.0, cooldown_s=4.0))
    # The autoscaler parked the Dell (3550 rps of capacity nobody
    # needed at <= 240 rps) and served the day on Edisons.
    assert scaled.ledger.counters["evals"] > 0
    assert scaled.pool.states()["web-2"] == OFF
    assert scaled.meter.energy_joules() < static.meter.energy_joules()
    # It still served the same day's offered load.
    assert scaled_level.ok_calls > 0.95 * static_level.ok_calls
    assert scaled_level.failed_connections == 0


def test_autoscaled_day_is_deterministic():
    def run():
        deployment = small_hybrid(autoscale=AutoscaleConfig.reactive())
        telemetry = Telemetry()
        telemetry.attach_web(deployment, until=12.0)
        level = deployment.run_day(DAY, 12.0, calls=4)
        return (asdict(level), deployment.meter.energy_joules(),
                deployment.ledger.summary())

    assert run() == run()
