"""Tests for repro.carbon: grid traces, deferral policies, the
suspend-resume governor, and the committed eight-arm day."""

import os

import pytest

from repro.carbon import (CarbonDayPlan, CarbonJobSpec, CarbonScheduler,
                          PolicySpec, SignalTrace, carbon_experiment,
                          evening_peak_price, grid_impact, make_policy,
                          run_policy_day, solar_dip_intensity)
from repro.energy import GridImpact
from repro.faults import FaultInjector
from repro.mapreduce import JobRunner

DAY = 7200.0
PLAN_PATH = os.path.join(os.path.dirname(__file__), "..", "experiments",
                         "carbon_day.json")

TS_EST = {"edison": 165.0, "dell": 35.0}


def flat_trace(value: float, unit: str = "gCO2/kWh") -> SignalTrace:
    return SignalTrace(name="flat", unit=unit, points=((0.0, value),))


def tiny_job(name: str = "ts", release: float = 100.0,
             deadline: float = 6000.0) -> CarbonJobSpec:
    return CarbonJobSpec(name, "terasort-mini", release, deadline, TS_EST)


# -- traces -------------------------------------------------------------------

def test_trace_validation():
    with pytest.raises(ValueError):
        SignalTrace("x", "u", points=())
    with pytest.raises(ValueError):
        SignalTrace("x", "u", points=((0.0, 1.0), (0.0, 2.0)))
    with pytest.raises(ValueError):
        SignalTrace("x", "u", points=((0.0, -1.0),))
    with pytest.raises(ValueError):
        SignalTrace("x", "u", points=((0.0, 1.0),), interpolation="cubic")
    with pytest.raises(ValueError):
        SignalTrace("x", "u", points=((0.0, 1.0), (10.0, 2.0)),
                    period_s=10.0)


def test_step_trace_holds_until_next_point():
    trace = SignalTrace("x", "u", points=((10.0, 100.0), (20.0, 200.0)))
    assert trace.at(0.0) == 100.0       # first value covers earlier times
    assert trace.at(10.0) == 100.0
    assert trace.at(19.9) == 100.0
    assert trace.at(20.0) == 200.0
    assert trace.at(99.0) == 200.0      # last value holds


def test_linear_trace_interpolates():
    trace = SignalTrace("x", "u", points=((0.0, 100.0), (10.0, 200.0)),
                        interpolation="linear")
    assert trace.at(5.0) == pytest.approx(150.0)
    assert trace.at(10.0) == 200.0


def test_periodic_trace_wraps():
    trace = SignalTrace("x", "u", points=((0.0, 1.0), (50.0, 2.0)),
                        period_s=100.0)
    assert trace.at(125.0) == 1.0
    assert trace.at(175.0) == 2.0


def test_percentile_is_time_weighted():
    # Value 1 for 90% of the span, value 100 for 10%: the median must
    # be 1 no matter that the points are 50/50.
    trace = SignalTrace("x", "u", points=((0.0, 1.0), (90.0, 100.0)),
                        period_s=100.0)
    assert trace.percentile(50, step_s=1.0) == 1.0
    assert trace.percentile(95, step_s=1.0) == 100.0


def test_next_at_or_below_scans_forward():
    trace = SignalTrace("x", "u", points=((0.0, 500.0), (100.0, 100.0)))
    assert trace.next_at_or_below(200.0, 0.0, horizon_s=500.0,
                                  step_s=10.0) == 100.0
    assert trace.next_at_or_below(200.0, 0.0, horizon_s=50.0,
                                  step_s=10.0) is None


def test_step_trace_steps_are_exact():
    trace = SignalTrace("x", "u", points=((0.0, 1.0), (100.0, 2.0),
                                          (200.0, 3.0)))
    assert trace.steps(50.0, 150.0) == [(50.0, 1.0), (100.0, 2.0)]


def test_trace_roundtrip(tmp_path):
    trace = solar_dip_intensity(DAY)
    path = str(tmp_path / "trace.json")
    trace.save(path)
    assert SignalTrace.load(path) == trace


def test_synthetic_shapes_have_the_advertised_shape():
    intensity = solar_dip_intensity(DAY)
    assert intensity.at(0.41 * DAY) < intensity.at(0.1 * DAY)   # solar dip
    assert intensity.at(0.85 * DAY) > intensity.at(0.5 * DAY)   # evening
    price = evening_peak_price(DAY)
    assert price.at(0.8 * DAY) > price.at(0.1 * DAY)


# -- job specs ----------------------------------------------------------------

def test_jobspec_validation():
    with pytest.raises(ValueError):
        CarbonJobSpec("x", "no-such-kind", 0.0, 10.0)
    with pytest.raises(ValueError):
        CarbonJobSpec("x", "terasort-mini", 10.0, 10.0)
    with pytest.raises(ValueError):
        CarbonJobSpec("x", "terasort-mini", 0.0, 10.0,
                      est_s={"edison": -1.0})


def test_jobspec_builds_a_real_job():
    job = tiny_job()
    spec, config = job.build("edison")
    assert spec.map_tasks == 16
    assert spec.name == "terasort-mini"
    assert config.node_vcores >= 1
    assert job.estimate("edison") == 165.0
    assert job.slack_s("edison") == pytest.approx(5900.0 - 165.0)
    with pytest.raises(KeyError):
        job.estimate("mainframe")


def test_jobspec_roundtrip():
    job = tiny_job()
    assert CarbonJobSpec.from_dict(job.to_dict()) == job


# -- policies -----------------------------------------------------------------

def test_policy_spec_validation():
    with pytest.raises(ValueError):
        PolicySpec(kind="psychic")
    with pytest.raises(ValueError):
        PolicySpec(threshold_pct=101.0)
    with pytest.raises(ValueError):
        PolicySpec(safety=0.5)
    with pytest.raises(ValueError):
        PolicySpec(check_interval_s=0.0)


def test_edd_picks_earliest_deadline():
    policy = make_policy(PolicySpec(kind="edd"), flat_trace(100.0))
    late = tiny_job("late", release=0.0, deadline=5000.0)
    soon = tiny_job("soon", release=10.0, deadline=3000.0)
    assert policy.pick([late, soon]) is soon
    # no-wait ignores deadlines: FIFO at release.
    fifo = make_policy(PolicySpec(kind="no-wait"), flat_trace(100.0))
    assert fifo.pick([late, soon]) is late


def test_threshold_policy_waits_for_the_dip():
    intensity = SignalTrace("x", "gCO2/kWh",
                            points=((0.0, 500.0), (1000.0, 100.0)),
                            period_s=DAY)
    policy = make_policy(PolicySpec(kind="threshold", threshold_pct=40.0),
                         intensity)
    job = tiny_job(release=0.0, deadline=6000.0)
    start = policy.earliest_start(job, 0.0, "edison")
    assert start == pytest.approx(1000.0, abs=31.0)   # waits for the dip
    # Already clean: start immediately.
    assert policy.earliest_start(job, 1500.0, "edison") == 1500.0
    # Deadline guard: never waits past deadline - safety * estimate.
    tight = tiny_job(release=0.0, deadline=700.0)
    assert policy.earliest_start(tight, 0.0, "edison") \
        <= 700.0 - 1.2 * 165.0
    # No dip inside the guard: waiting buys nothing, start now.
    dirty = SignalTrace("x", "gCO2/kWh", points=((0.0, 500.0),))
    stuck = make_policy(PolicySpec(kind="threshold"), dirty)
    assert stuck.earliest_start(job, 123.0, "edison") == 123.0


# -- suspend/resume mechanics -------------------------------------------------

def test_suspend_resume_mid_job_completes_without_fault_records():
    """Park the fleet during the in-flight shuffle leg and come back."""
    job = tiny_job()
    spec, config = job.build("edison")
    plain = JobRunner("edison", 4, config=config, seed=11).run(spec)

    runner = JobRunner("edison", 4, config=config, seed=11)
    injector = FaultInjector(runner.cluster)

    def parker():
        # 60% through the plain runtime the reduce/shuffle wave is in
        # flight (slowstart starts shuffling long before maps finish).
        yield 0.6 * plain.seconds
        runner.suspend_workers()
        yield 120.0
        yield from runner.resume_workers(boot_s=8.0)

    runner.sim.process(parker(), name="parker")
    parked = runner.run(spec)
    assert parked.seconds > plain.seconds + 120.0
    assert parked.joules > 0
    # Admin states write no FaultRecords and accrue no downtime.
    assert injector.records == []
    assert injector.downtime("edison-0") == 0.0
    # Parked means dark: the meter reads 0 W mid-suspension.
    mid = 0.6 * plain.seconds + 60.0
    assert parked.timeline.power_w.at(mid) == 0.0


def test_suspend_requires_an_injector():
    runner = JobRunner("edison", 2, seed=1)
    with pytest.raises(RuntimeError):
        runner.suspend_workers()
    with pytest.raises(RuntimeError):
        list(runner.resume_workers(1.0))
    with pytest.raises(ValueError):
        list(runner.resume_workers(-1.0))


# -- ledger and grid impact ---------------------------------------------------

def test_grid_impact_flat_signals_reduce_to_plain_energy():
    # 100 W for 3600 s = 0.1 kWh; at 400 g/kWh and $0.10/kWh.
    pairs = [(0.0, 100.0), (3600.0, 100.0)]
    impact = grid_impact(pairs, 0.0, flat_trace(400.0),
                         flat_trace(0.10, unit="usd/kWh"))
    assert impact.grams_co2 == pytest.approx(40.0)
    assert impact.energy_usd == pytest.approx(0.01)


def test_grid_impact_moves_with_the_day_clock():
    intensity = SignalTrace("x", "gCO2/kWh",
                            points=((0.0, 500.0), (1000.0, 100.0)))
    price = flat_trace(0.10, unit="usd/kWh")
    pairs = [(0.0, 100.0), (100.0, 100.0)]
    dirty = grid_impact(pairs, 0.0, intensity, price)
    clean = grid_impact(pairs, 2000.0, intensity, price)
    assert clean.grams_co2 == pytest.approx(dirty.grams_co2 / 5.0)
    assert clean.energy_usd == pytest.approx(dirty.energy_usd)


def test_grid_impact_adds():
    total = (GridImpact(grams_co2=1.0, energy_usd=0.5)
             + GridImpact(grams_co2=2.0, energy_usd=0.25))
    assert total.grams_co2 == 3.0
    assert total.energy_usd == 0.75
    with pytest.raises(ValueError):
        GridImpact(grams_co2=-1.0)


# -- the scheduler ------------------------------------------------------------

def test_no_wait_arm_is_bit_identical_to_plain_runs():
    """The deferral queue must be a pure front end: the no-wait arm's
    runs are float-for-float the plain ``JobRunner`` runs."""
    job = tiny_job(release=50.0)
    spec, config = job.build("edison")
    plain = JobRunner("edison", 4, config=config, seed=123).run(spec)
    ledger = run_policy_day(
        "edison", 4, PolicySpec(kind="no-wait"), [job],
        solar_dip_intensity(DAY), evening_peak_price(DAY), seed=123)
    record = ledger.records[0]
    assert record.start_s == 50.0                 # at release, not before
    assert record.seconds == plain.seconds        # exact, not approx
    assert record.joules == plain.joules
    assert record.deadline_met


def test_threshold_arm_defers_into_the_dip_and_meets_deadlines():
    intensity = solar_dip_intensity(DAY)
    jobs = [tiny_job("a", release=600.0, deadline=6000.0),
            tiny_job("b", release=900.0, deadline=6000.0)]
    scheduler = CarbonScheduler(
        "edison", 4, PolicySpec(kind="threshold", threshold_pct=40.0),
        intensity, evening_peak_price(DAY), seed=123)
    ledger = scheduler.run_day(jobs)
    threshold = intensity.percentile(40.0)
    for record in ledger.records:
        assert intensity.at(record.start_s) <= threshold
        assert record.deadline_met
        assert record.wait_s > 0
    assert ledger.deadline_misses == 0


def test_suspend_resume_arm_parks_and_still_meets_deadlines():
    intensity = solar_dip_intensity(DAY)
    job = tiny_job(release=600.0, deadline=6000.0)
    ledger = run_policy_day(
        "edison", 4,
        PolicySpec(kind="suspend-resume", threshold_pct=40.0),
        [job], intensity, evening_peak_price(DAY), seed=123)
    record = ledger.records[0]
    assert record.suspensions >= 1
    assert record.suspended_s > 0
    assert record.deadline_met
    # The action log pairs suspends with resumes, on the day clock.
    actions = [a.action for a in ledger.actions]
    assert actions.count("suspend") == actions.count("resume")
    assert ledger.actions[0].time > 600.0


# -- the committed day --------------------------------------------------------

@pytest.fixture(scope="module")
def committed_report():
    plan = CarbonDayPlan.load(PLAN_PATH)
    return plan, carbon_experiment(plan)


def test_committed_day_loads_and_roundtrips():
    plan = CarbonDayPlan.load(PLAN_PATH)
    assert CarbonDayPlan.from_dict(plan.to_dict()) == plan
    assert {p.kind for p in plan.policies} == {
        "no-wait", "edd", "threshold", "suspend-resume"}
    assert {j.kind for j in plan.jobs} == {"terasort-mini", "wikidb-scan"}


def test_committed_day_headline(committed_report):
    """The ISSUE acceptance claim: a waiting or suspend-resume policy
    beats no-wait on grams CO2 at zero deadline misses."""
    _, report = committed_report
    for platform in ("edison", "dell"):
        dominating = report.dominating_policies(platform)
        assert set(dominating) & {"threshold", "suspend-resume"}, platform
        for policy in dominating:
            arm = report.arm(policy, platform)
            assert arm.deadline_misses == 0
            assert arm.grams_co2 < report.arm("no-wait",
                                              platform).grams_co2


def test_committed_day_edison_vs_r620_delta(committed_report):
    """The paper's platform gap, restated in grams: the R620 day emits
    a multiple of the Edison day's CO2, at release and at best."""
    _, report = committed_report
    delta = report.platform_delta()
    assert delta is not None
    assert delta["no_wait_ratio"] > 2.0
    assert delta["best_ratio"] > 2.0
    assert delta["edison_grams_saved"] > 0
    assert delta["dell_grams_saved"] > 0
    # And the report states it.
    assert any("Edison vs R620" in line for line in report.lines())


def test_committed_day_report_roundtrip(committed_report):
    _, report = committed_report
    from repro.carbon import CarbonReport
    again = CarbonReport.from_dict(report.to_dict())
    assert again.platform_delta() == report.platform_delta()
    assert [a.label for a in again.arms] == [a.label for a in report.arms]


def test_report_lines_show_all_four_policies(committed_report):
    _, report = committed_report
    text = "\n".join(report.lines())
    for policy in ("no-wait", "edd", "threshold", "suspend-resume"):
        assert policy in text
    assert "grams CO2" in text
    assert "verdict" in text
