"""Contract tests for the causality package.

Covers context minting and propagation, forest reconstruction,
critical-path extraction (and its Table 7 oracle), per-span energy
attribution conservation, aborted-span tagging under injected faults,
exemplar determinism and the flame-graph exporters.
"""

import math

import pytest

from repro.causality import (ExemplarStore, SpanContext, attribute_energy,
                             build_forest, collapse, critical_path,
                             decomposition_from_critical_paths,
                             energy_stacks, latency_stacks, render_html,
                             self_times, write_collapsed, write_flame_html)
from repro.faults import single_node_kill
from repro.trace import (TraceEvent, TraceLog, Tracer,
                         delay_decomposition_from_trace)
from repro.web import WebServiceDeployment


def traced_web_run(seed=11, concurrency=16, duration=1.5, warmup=0.5):
    tracer = Tracer()
    deployment = WebServiceDeployment("edison", "1/8", seed=seed,
                                      trace=tracer)
    deployment.run_level(concurrency, duration=duration, warmup=warmup)
    return tracer.log, deployment


# -- SpanContext --------------------------------------------------------------

def test_span_context_validates_ids():
    ctx = SpanContext(trace_id=3, span_id=5, parent_id=2)
    assert not ctx.is_root
    assert SpanContext(trace_id=1, span_id=1).is_root
    with pytest.raises(ValueError):
        SpanContext(trace_id=0, span_id=1)
    with pytest.raises(ValueError):
        SpanContext(trace_id=1, span_id=0)
    with pytest.raises(ValueError):
        SpanContext(trace_id=1, span_id=1, parent_id=-1)


def test_traceparent_rendering():
    ctx = SpanContext(trace_id=10, span_id=255)
    assert ctx.to_traceparent() == f"00-{10:032x}-{255:016x}-01"


def test_tracer_mints_linked_contexts():
    tracer = Tracer()
    root = tracer.root_context()
    assert root.is_root and root.trace_id == root.span_id
    child = tracer.child_context(root)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    # None parent mints a fresh root — convenient for optional ctx.
    other = tracer.child_context(None)
    assert other.is_root and other.trace_id != root.trace_id


# -- forest reconstruction ----------------------------------------------------

def span(ts, dur, name, *, node="", span_id=0, parent_id=0, trace_id=0,
         category="web", attrs=None):
    return TraceEvent(ts=ts, dur=dur, phase="X", category=category,
                      name=name, node=node, attrs=attrs or {},
                      trace_id=trace_id or span_id, span_id=span_id,
                      parent_id=parent_id)


def test_build_forest_links_children_and_orphans():
    log = TraceLog()
    log.append(span(0.0, 1.0, "root", span_id=1))
    log.append(span(0.1, 0.4, "child", span_id=2, parent_id=1, trace_id=1))
    log.append(span(0.6, 0.3, "child", span_id=3, parent_id=1, trace_id=1))
    log.append(span(0.2, 0.1, "leaf", span_id=4, parent_id=2, trace_id=1))
    log.append(span(5.0, 0.5, "lost", span_id=9, parent_id=8, trace_id=8))
    log.append(TraceEvent(ts=0.0, phase="i", category="web", name="noise"))
    forest = build_forest(log)
    assert [r.name for r in forest.roots] == ["root", "lost"]
    assert [o.name for o in forest.orphans] == ["lost"]
    root = forest.tree(1)
    assert [c.span_id for c in root.children] == [2, 3]
    assert [n.name for n in root.walk()] == ["root", "child", "leaf",
                                             "child"]
    assert [a.span_id for a in forest.ancestors(4)] == [2, 1]


def test_real_web_run_yields_causal_trees():
    log, _ = traced_web_run()
    forest = build_forest(log)
    assert forest.roots
    requests = forest.spans("request")
    assert requests
    # Every request span links upward: call -> connection when the
    # connection closed inside the run, or to an orphaned call root.
    linked = 0
    for req in requests:
        names = [a.name for a in forest.ancestors(req.span_id)]
        if names[:2] == ["call", "connection"]:
            linked += 1
        req_children = {c.name for c in req.children}
        assert req_children <= {"cache", "db"}
    assert linked > 0
    # cache/db spans share their request's trace id (one trace per
    # connection).
    for req in requests:
        for child in req.children:
            assert child.trace_id == req.trace_id


# -- critical paths -----------------------------------------------------------

def test_critical_path_partitions_wall_time():
    log = TraceLog()
    log.append(span(0.0, 10.0, "root", span_id=1))
    log.append(span(1.0, 3.0, "a", span_id=2, parent_id=1, trace_id=1))
    log.append(span(3.0, 4.0, "b", span_id=3, parent_id=1, trace_id=1))
    log.append(span(2.0, 1.0, "a1", span_id=4, parent_id=2, trace_id=1))
    forest = build_forest(log)
    path = critical_path(forest.tree(1))
    # Segments tile [0, 10) exactly, in order.
    segs = sorted(path.segments, key=lambda s: s.start)
    assert segs[0].start == 0.0 and segs[-1].end == 10.0
    for left, right in zip(segs, segs[1:]):
        assert left.end == right.start
    assert math.isclose(sum(s.duration for s in segs), 10.0)
    # Sibling b overlaps a's tail [3, 4): the earlier sibling keeps it.
    by_name = path.by_name()
    assert by_name["a"] == pytest.approx(2.0)   # [1,2) + [3,4)
    assert by_name["a1"] == pytest.approx(1.0)
    assert by_name["b"] == pytest.approx(3.0)   # clipped to [4, 7)
    assert by_name["root"] == pytest.approx(4.0)  # [0,1) + [7,10)
    kinds = path.by_kind()
    assert kinds["self"] == pytest.approx(4.0)    # a1 + b
    assert kinds["blocked"] == pytest.approx(6.0)  # root + a gaps
    # Two 3 s segments tie for longest; the earlier start wins.
    top = path.longest(2)
    assert [s.name for s in top] == ["b", "root"]
    assert all(s.duration == pytest.approx(3.0) for s in top)


def test_self_times_sum_to_root_duration():
    log, _ = traced_web_run()
    forest = build_forest(log)
    for root in forest.roots[:20]:
        totals = self_times(root)
        assert sum(totals.values()) == pytest.approx(root.dur)
        assert all(v >= 0.0 for v in totals.values())


def test_tree_decomposition_matches_flat_decomposition():
    log, _ = traced_web_run()
    flat = delay_decomposition_from_trace(log, after=0.5)
    tree = decomposition_from_critical_paths(log, after=0.5)
    assert tree.requests == flat.requests
    assert tree.db_delay_s == pytest.approx(flat.db_delay_s, rel=1e-9)
    assert tree.cache_delay_s == pytest.approx(flat.cache_delay_s, rel=1e-9)
    assert tree.total_delay_s == pytest.approx(flat.total_delay_s, rel=1e-9)
    assert tree.connect_delay_s == pytest.approx(flat.connect_delay_s,
                                                 rel=1e-9)


def test_decomposition_raises_without_requests():
    with pytest.raises(ValueError):
        decomposition_from_critical_paths(TraceLog())


# -- energy attribution -------------------------------------------------------

def power_counter(ts, watts, node):
    return TraceEvent(ts=ts, phase="C", category="power",
                      name="meter.node_power_w", node=node,
                      attrs={"value": watts})


def test_synthetic_energy_attribution_is_exact():
    # Node at 10 W idle; one span [1, 3) while power is 16 W.
    log = TraceLog()
    for t in (0.0, 1.0, 2.0, 3.0, 4.0):
        log.append(power_counter(t, 16.0 if 1.0 <= t <= 3.0 else 10.0,
                                 "n0"))
    log.append(span(1.0, 2.0, "work", node="n0", span_id=1))
    attribution = attribute_energy(log, idle_w={"n0": 10.0})
    acct = attribution.nodes["n0"]
    # Trapezoids: 13 + 16 + 16 + 13 over the four unit intervals.
    assert acct.metered_j == pytest.approx(58.0)
    assert acct.baseline_j == pytest.approx(40.0)
    # Marginal inside [1, 3) goes to the span (6 + 6 J); the ramps
    # outside it ([0,1) and [3,4)) have no resident -> unattributed.
    assert acct.by_span[1] == pytest.approx(12.0)
    assert acct.unattributed_j == pytest.approx(6.0)
    assert acct.conservation_error_rel < 1e-12
    assert attribution.joules_of(1) == pytest.approx(12.0)


def test_marginal_watts_split_across_residents_not_ancestors():
    log = TraceLog()
    for t in (0.0, 1.0, 2.0):
        log.append(power_counter(t, 20.0, "n0"))
    # Parent covers the window; child is resident for the first half.
    log.append(span(0.0, 2.0, "parent", node="n0", span_id=1))
    log.append(span(0.0, 1.0, "child", node="n0", span_id=2,
                    parent_id=1, trace_id=1))
    attribution = attribute_energy(log, idle_w={"n0": 10.0})
    acct = attribution.nodes["n0"]
    # First half's 10 J of marginal goes to the child alone (deepest
    # resident); second half's to the parent.
    assert acct.by_span[2] == pytest.approx(10.0)
    assert acct.by_span[1] == pytest.approx(10.0)
    assert acct.unattributed_j == pytest.approx(0.0)


def test_real_run_energy_conserves_per_node():
    log, deployment = traced_web_run()
    idle = {server.name: server.spec.power.min_w
            for server in deployment.cluster.servers.values()}
    attribution = attribute_energy(log, idle_w=idle)
    assert attribution.nodes
    meter = deployment.cluster.meter
    for name, acct in attribution.nodes.items():
        assert acct.conservation_error_rel <= 1e-3
        assert acct.metered_j == pytest.approx(
            meter.node_energy_joules(name), rel=1e-9)
    assert sum(acct.attributed_j
               for acct in attribution.nodes.values()) > 0.0
    # Rolling up per-trace totals loses nothing that was attributed to
    # spans reachable from a root.
    forest = build_forest(log)
    per_trace = attribution.by_trace(forest)
    assert sum(per_trace.values()) == pytest.approx(
        sum(acct.attributed_j for acct in attribution.nodes.values()))


# -- aborted spans under faults -----------------------------------------------

def test_crash_mid_request_closes_spans_as_aborted():
    tracer = Tracer()
    deployment = WebServiceDeployment("edison", "1/8", seed=11,
                                      trace=tracer)
    deployment.attach_faults(single_node_kill("web-0", 0.6))
    deployment.run_level(16, duration=1.5, warmup=0.25)
    forest = build_forest(tracer.log)
    aborted = [n for n in forest.walk() if n.aborted is not None]
    assert aborted, "the crash left no aborted spans"
    kinds = {n.aborted for n in aborted}
    assert "crash" in kinds
    # Aborted spans are closed: finite duration, still inside trees.
    for node in aborted:
        assert node.dur >= 0.0
        assert node.end <= 2.0


# -- exemplars ----------------------------------------------------------------

def test_exemplar_store_keeps_worst_per_bucket():
    store = ExemplarStore()
    store.observe(0.010, trace_id=1)
    store.observe(0.011, trace_id=2)   # worse, nearby bucket or same
    store.observe(0.500, trace_id=3)
    store.observe(0.500, trace_id=4)   # tie: first seen wins
    store.observe(0.0, trace_id=5)     # underflow bucket
    store.observe(1.0, trace_id=0)     # no identity: ignored
    assert store.worst().trace_id == 3
    values = [ex.value for ex in store.exemplars()]
    assert values == sorted(values)
    assert all(ex.trace_id > 0 for ex in store.exemplars())
    # Round-trips through plain dicts.
    clone = ExemplarStore.from_dict(store.to_dict())
    assert clone.to_dict() == store.to_dict()
    assert clone.worst() == store.worst()


# -- flame graphs -------------------------------------------------------------

def test_collapsed_stacks_weigh_self_time():
    log = TraceLog()
    log.append(span(0.0, 10.0, "root", node="n0", span_id=1))
    log.append(span(2.0, 4.0, "leg", node="n1", span_id=2, parent_id=1,
                    trace_id=1))
    forest = build_forest(log)
    stacks = collapse(forest)
    assert stacks == {"root@n0": 6_000_000, "root@n0;leg@n1": 4_000_000}
    weighted = energy_stacks(forest, {2: 0.25})
    assert weighted == {"root@n0;leg@n1": 250_000}


def test_flame_outputs_are_deterministic(tmp_path):
    log, _ = traced_web_run()
    stacks = latency_stacks(build_forest(log))
    assert stacks
    first = render_html(stacks, title="t", unit="µs")
    assert first == render_html(stacks, title="t", unit="µs")
    assert "<svg" in first and "connection" in first
    collapsed = tmp_path / "flame.txt"
    write_collapsed(str(collapsed), stacks)
    lines = collapsed.read_text().splitlines()
    assert len(lines) == len(stacks)
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack in stacks and int(count) == stacks[stack]
    html_path = tmp_path / "flame.html"
    write_flame_html(str(html_path), stacks)
    assert html_path.read_text().startswith("<!DOCTYPE html>")
