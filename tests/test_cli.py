"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "16" in out


def test_table10_command(capsys):
    assert main(["table10"]) == 0
    out = capsys.readouterr().out
    assert "web/low" in out
    assert "savings" in out


def test_web_command_small_scale(capsys):
    assert main(["web", "--platform", "edison", "--scale", "1/8",
                 "--concurrency", "16", "--duration", "1.5"]) == 0
    out = capsys.readouterr().out
    assert "requests/s" in out
    assert "cluster power" in out


def test_job_command_reports_paper_value(capsys):
    assert main(["job", "pi", "--platform", "edison", "--slaves", "4"]) == 0
    out = capsys.readouterr().out
    assert "run time" in out
    assert "paper:" in out       # 4-slave pi is a Table 8 cell


def test_job_command_unknown_job_rejected():
    with pytest.raises(SystemExit):
        main(["job", "sort-of-sort"])


def test_histogram_command(capsys):
    assert main(["histogram", "--platform", "edison", "--rate", "500",
                 "--duration", "2.0"]) == 0
    out = capsys.readouterr().out
    assert "delay (s)" in out


def test_seed_flag_changes_nothing_structural(capsys):
    assert main(["--seed", "7", "table2"]) == 0
    assert "Table 2" in capsys.readouterr().out
