"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "16" in out


def test_table10_command(capsys):
    assert main(["table10"]) == 0
    out = capsys.readouterr().out
    assert "web/low" in out
    assert "savings" in out


def test_web_command_small_scale(capsys):
    assert main(["web", "--platform", "edison", "--scale", "1/8",
                 "--concurrency", "16", "--duration", "1.5"]) == 0
    out = capsys.readouterr().out
    assert "requests/s" in out
    assert "cluster power" in out


def test_job_command_reports_paper_value(capsys):
    assert main(["job", "pi", "--platform", "edison", "--slaves", "4"]) == 0
    out = capsys.readouterr().out
    assert "run time" in out
    assert "paper:" in out       # 4-slave pi is a Table 8 cell


def test_job_command_unknown_job_rejected():
    with pytest.raises(SystemExit):
        main(["job", "sort-of-sort"])


def test_histogram_command(capsys):
    assert main(["histogram", "--platform", "edison", "--rate", "500",
                 "--duration", "2.0"]) == 0
    out = capsys.readouterr().out
    assert "delay (s)" in out


def test_seed_flag_changes_nothing_structural(capsys):
    assert main(["--seed", "7", "table2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_autoscale_command_runs_a_tiny_day(tmp_path, capsys):
    import json

    from repro.autoscale import DayPlan
    from repro.web import DiurnalShape, ShapedLoad

    plan = DayPlan(
        name="tiny", duration_s=8.0, calls=4,
        shape=ShapedLoad(DiurnalShape(base_rps=40.0, peak_rps=200.0,
                                      period_s=8.0)),
        edison_scale="2x1", dell_scale="1x1",
        hybrid_edison_web=2, hybrid_dell_web=1, hybrid_cache=1)
    plan_path = tmp_path / "day.json"
    plan.save(str(plan_path))
    json_path = tmp_path / "report.json"

    assert main(["autoscale", "--plan", str(plan_path),
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "autoscaled-hybrid" in out
    assert "scaling overhead" in out
    report = json.loads(json_path.read_text())
    assert [arm["label"] for arm in report["arms"]] == [
        "static-edison", "static-dell", "autoscaled-hybrid"]


def test_dvfs_command_runs_a_tiny_sweep(tmp_path, capsys):
    import json

    from repro.dvfs import DvfsPlan
    from repro.web import DiurnalShape, ShapedLoad

    plan = DvfsPlan(
        name="tiny",
        shapes={"diurnal": ShapedLoad(DiurnalShape(
            base_rps=40.0, peak_rps=260.0, period_s=6.0))},
        duration_s=6.0, calls=4)
    plan_path = tmp_path / "day.json"
    plan.save(str(plan_path))
    json_path = tmp_path / "report.json"

    assert main(["dvfs", "--plan", str(plan_path), "--no-scorecards",
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "governor sweep" in out
    assert "verdict" in out
    report = json.loads(json_path.read_text())
    assert [arm["governor"] for arm in report["arms"]] == [
        "performance", "powersave", "ondemand"] * 2
    assert {arm["platform"] for arm in report["arms"]} == \
        {"edison", "dell"}
    assert report["scorecards"] == []


def test_carbon_command_runs_a_tiny_day(tmp_path, capsys):
    import json

    from repro.carbon import (CarbonDayPlan, CarbonJobSpec, PolicySpec,
                              evening_peak_price, solar_dip_intensity)

    plan = CarbonDayPlan(
        name="tiny-day", day_s=7200.0,
        intensity=solar_dip_intensity(7200.0),
        price=evening_peak_price(7200.0),
        jobs=(CarbonJobSpec("ts", "terasort-mini", 300.0, 6000.0,
                            est_s={"edison": 400.0, "dell": 80.0}),),
        slaves={"edison": 2, "dell": 1},
        policies=(PolicySpec(kind="no-wait"),
                  PolicySpec(kind="threshold", threshold_pct=40.0)))
    plan_path = tmp_path / "day.json"
    plan.save(str(plan_path))
    json_path = tmp_path / "report.json"

    assert main(["carbon", "--plan", str(plan_path),
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "grams CO2" in out
    assert "verdict" in out
    report = json.loads(json_path.read_text())
    assert [(arm["policy"], arm["platform"]) for arm in report["arms"]] \
        == [("no-wait", "edison"), ("threshold", "edison"),
            ("no-wait", "dell"), ("threshold", "dell")]
    assert report["platform_delta"]["no_wait_ratio"] > 1.0


def test_web_flame_flag_writes_both_formats(tmp_path, capsys):
    html = tmp_path / "flame.html"
    collapsed = tmp_path / "flame.txt"
    assert main(["web", "--platform", "edison", "--scale", "1/8",
                 "--concurrency", "16", "--duration", "1.5",
                 "--flame", str(html)]) == 0
    assert main(["web", "--platform", "edison", "--scale", "1/8",
                 "--concurrency", "16", "--duration", "1.5",
                 "--flame", str(collapsed)]) == 0
    out = capsys.readouterr().out
    assert out.count("flame:") == 2
    assert html.read_text().startswith("<!DOCTYPE html>")
    assert "<svg" in html.read_text()
    first_line = collapsed.read_text().splitlines()[0]
    stack, _, count = first_line.rpartition(" ")
    assert ";" in stack or "@" in stack
    assert int(count) > 0


def test_flame_flag_rejects_missing_directory():
    with pytest.raises(SystemExit):
        main(["web", "--platform", "edison", "--scale", "1/8",
              "--concurrency", "16", "--duration", "1.5",
              "--flame", "/no/such/dir/flame.html"])


def test_trace_extension_picks_jsonl_format(tmp_path, capsys):
    from repro.trace import read_jsonl
    path = tmp_path / "run.jsonl"
    assert main(["web", "--platform", "edison", "--scale", "1/8",
                 "--concurrency", "16", "--duration", "1.5",
                 "--trace", str(path)]) == 0
    assert "repro causality" in capsys.readouterr().out
    log = read_jsonl(str(path))
    assert len(log) > 100
    assert any(event.span_id for event in log)


def test_causality_command_reports_trees_and_energy(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(["web", "--platform", "edison", "--scale", "1/8",
                 "--concurrency", "16", "--duration", "1.5",
                 "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    flame = tmp_path / "flame.txt"
    energy_flame = tmp_path / "energy.html"
    assert main(["causality", str(trace_path), "--after", "0.5",
                 "--flame", str(flame),
                 "--energy-flame", str(energy_flame)]) == 0
    out = capsys.readouterr().out
    assert "causal trees" in out
    assert "slowest tree: connection" in out
    assert "decomposition (" in out
    assert "energy web-0:" in out
    assert flame.read_text()
    assert energy_flame.read_text().startswith("<!DOCTYPE html>")


def test_causality_command_rejects_unidentified_trace(tmp_path):
    from repro.trace import TraceLog, write_jsonl
    path = tmp_path / "empty.jsonl"
    write_jsonl(TraceLog(), str(path))
    with pytest.raises(SystemExit):
        main(["causality", str(path)])


def test_durability_command_runs_a_tiny_day(tmp_path, capsys):
    import json

    from repro.durability import DurabilityPlan
    from repro.faults import FaultPlan, switch_down

    plan = DurabilityPlan(
        name="tiny-day", slaves=4, racks=2, job="wordcount2",
        replications=(2,), settle_s=10.0,
        faults=FaultPlan(faults=(
            switch_down("{platform}-rack-0", at=8.0, duration=6.0),)))
    plan_path = tmp_path / "day.json"
    plan.save(str(plan_path))
    json_path = tmp_path / "report.json"

    assert main(["durability", "--plan", str(plan_path),
                 "--platforms", "dell", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "Durability day" in out
    assert "verdict [dell]" in out
    assert "reconciliation" in out
    report = json.loads(json_path.read_text())
    labels = [arm["label"] for arm in report["arms"]]
    assert labels == ["dell/oblivious/r2", "dell/rack-aware/r2"]
    assert [c["label"] for c in report["controls"]] == \
        ["dell/rack-aware/r2/control"]
