"""Tests for the core evaluation harness: metrics, reports, capacity."""

import pytest

from repro.core import paperdata as paper
from repro.core.capacity import replacement_estimate
from repro.core.metrics import (
    efficiency_ratio, mean_speedup_across_jobs, relative_error,
    speedup_per_doubling, within_band, work_done_per_joule,
)
from repro.core.report import format_series, format_table, paper_vs_measured
from repro.hardware import DELL_R620, EDISON


# -- metrics -----------------------------------------------------------------

def test_work_done_per_joule_basic():
    assert work_done_per_joule(10, 2) == 5
    with pytest.raises(ValueError):
        work_done_per_joule(1, 0)


def test_efficiency_ratio_from_table8_wordcount():
    wc = paper.T8["wordcount"]
    ratio = efficiency_ratio(wc["edison"][35].joules, wc["dell"][2].joules)
    assert ratio == pytest.approx(2.28, abs=0.01)


def test_efficiency_ratio_validation():
    with pytest.raises(ValueError):
        efficiency_ratio(0, 1)


def test_speedup_per_doubling_non_power_of_two_ladder():
    # 35 -> 17 is not exactly 2x; the metric normalises by size ratio.
    times = {35: 100.0, 17: 210.0}
    speedup = speedup_per_doubling(times)
    assert 1.9 < speedup < 2.2


def test_speedup_needs_two_sizes():
    with pytest.raises(ValueError):
        speedup_per_doubling({4: 100.0})


def test_mean_speedup_matches_paper_recomputation():
    """Sanity: the paper's own Table 8 yields ~1.9 for Edison."""
    times = {job: {size: r.seconds
                   for size, r in paper.T8[job]["edison"].items()}
             for job in paper.T8}
    assert mean_speedup_across_jobs(times) == pytest.approx(
        paper.S53_EDISON_MEAN_SPEEDUP, abs=0.15)


def test_mean_speedup_requires_jobs():
    with pytest.raises(ValueError):
        mean_speedup_across_jobs({})


def test_relative_error_and_band():
    assert relative_error(110, 100) == pytest.approx(0.10)
    assert within_band(110, 100, 0.10)
    assert not within_band(120, 100, 0.10)
    with pytest.raises(ValueError):
        relative_error(1, 0)


# -- report -------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(("a", "bb"), [("x", 1), ("yyyy", 22)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1          # all rows equally wide


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table((), [])
    with pytest.raises(ValueError):
        format_table(("a",), [("x", "too-wide")])


def test_format_series_subsamples():
    pairs = [(float(i), float(i * i)) for i in range(100)]
    text = format_series("s", pairs, max_points=10)
    assert text.count(":") == 10
    assert "0:0" in text
    assert "99:9801" in text
    with pytest.raises(ValueError):
        format_series("s", pairs, max_points=1)


def test_paper_vs_measured_shows_error():
    text = paper_vs_measured([("x", 100.0, 110.0)], title="cmp")
    assert "+10.0%" in text


# -- capacity -------------------------------------------------------------------

def test_replacement_estimate_matches_table2():
    estimate = replacement_estimate(EDISON, DELL_R620)
    assert estimate.by_cpu == 12
    assert estimate.by_memory == 16
    assert estimate.by_network == 10
    assert estimate.required == paper.T2_EDISONS_PER_DELL


def test_replacement_estimate_is_ceiling():
    # A dell replacing a dell needs exactly one of itself.
    estimate = replacement_estimate(DELL_R620, DELL_R620)
    assert estimate.required == 1
