"""Tests for repro.durability: rack-aware placement, the repair loop,
block conservation, the ledger and the committed day's report."""

import dataclasses
import random

import pytest

from repro.cluster.builders import hadoop_cluster
from repro.durability import (DurabilityArm, DurabilityConfig,
                              DurabilityLedger, DurabilityPlan,
                              DurabilityReport, PhiConfig, RepairConfig,
                              attach_job)
from repro.faults import (FaultInjector, FaultPlan, disk_failure,
                          node_crash, rack_partition, switch_down)
from repro.mapreduce.hdfs import BlockUnavailable, Hdfs
from repro.sim import Simulation


def hdfs_fixture(slaves=4, replication=2, rack_aware=False, racks=2,
                 plan=None):
    sim = Simulation()
    cluster = hadoop_cluster(sim, "edison", slaves, racks=racks)
    injector = FaultInjector(cluster, plan)
    datanodes = [cluster.servers[f"edison-slave-{i}"]
                 for i in range(slaves)]
    hdfs = Hdfs(sim, cluster.topology, datanodes, block_bytes=1 << 20,
                replication=replication, rng=random.Random(42),
                rack_aware=rack_aware)
    return sim, cluster, injector, hdfs


# -- config -------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        PhiConfig(threshold=0.0)
    with pytest.raises(ValueError):
        PhiConfig(window=1)
    with pytest.raises(ValueError):
        RepairConfig(throttle_bps=0.0)
    with pytest.raises(ValueError):
        RepairConfig(max_streams=0)
    with pytest.raises(ValueError):
        DurabilityConfig(sample_interval_s=0.0)


def test_config_roundtrip_and_markers():
    config = DurabilityConfig.full(rack_aware=True)
    assert config.enabled and config.rack_aware
    again = DurabilityConfig.from_dict(config.to_dict())
    assert again == config
    assert not DurabilityConfig.disabled().enabled
    assert not DurabilityConfig().enabled      # off is the default


# -- rack-aware placement -----------------------------------------------------

def test_rack_aware_placement_spreads_replicas_across_racks():
    _, _, _, hdfs = hdfs_fixture(rack_aware=True)
    record = hdfs.stage_file("input", 8 << 20)
    rack_of = hdfs.topology.rack_of
    for block in record.blocks:
        assert len({rack_of(r) for r in block.replicas}) == 2


def test_oblivious_placement_can_trap_a_block_in_one_rack():
    _, _, _, hdfs = hdfs_fixture(rack_aware=False)
    record = hdfs.stage_file("input", 64 << 20)
    rack_of = hdfs.topology.rack_of
    racks_per_block = [len({rack_of(r) for r in b.replicas})
                       for b in record.blocks]
    assert 1 in racks_per_block       # at least one single-rack block


def test_triple_replication_covers_both_racks_then_reuses():
    _, _, _, hdfs = hdfs_fixture(replication=3, rack_aware=True)
    record = hdfs.stage_file("input", 4 << 20)
    rack_of = hdfs.topology.rack_of
    for block in record.blocks:
        assert len(block.replicas) == 3
        assert len({rack_of(r) for r in block.replicas}) == 2


# -- same-rack read preference ------------------------------------------------

def test_remote_read_prefers_same_rack_replica():
    sim, _, _, hdfs = hdfs_fixture()
    record = hdfs.stage_file("input", 1 << 20)
    block = record.blocks[0]
    # Pin the replicas: one in each rack, reader holds neither.
    block.replicas = ("edison-slave-0", "edison-slave-2")
    reader = "edison-slave-1"        # rack-0, same as slave-0
    sim.process(hdfs.read_block(reader, block))
    sim.run()
    assert hdfs.same_rack_read_bytes == block.size_bytes
    assert hdfs.cross_rack_read_bytes == 0.0


def test_remote_read_crosses_racks_only_when_it_must():
    sim, _, _, hdfs = hdfs_fixture()
    record = hdfs.stage_file("input", 1 << 20)
    block = record.blocks[0]
    block.replicas = ("edison-slave-2", "edison-slave-3")   # rack-1 only
    sim.process(hdfs.read_block("edison-slave-0", block))
    sim.run()
    assert hdfs.same_rack_read_bytes == 0.0
    assert hdfs.cross_rack_read_bytes == block.size_bytes


def test_local_read_counts_in_neither_bucket():
    sim, _, _, hdfs = hdfs_fixture()
    record = hdfs.stage_file("input", 1 << 20)
    block = record.blocks[0]
    sim.process(hdfs.read_block(block.replicas[0], block))
    sim.run()
    assert hdfs.same_rack_read_bytes == 0.0
    assert hdfs.cross_rack_read_bytes == 0.0


# -- reads under partitions ---------------------------------------------------

def test_read_stalls_through_partition_and_completes_after_heal():
    plan = FaultPlan(faults=(
        rack_partition("edison-rack-1", at=0.0, duration=5.0),))
    sim, _, _, hdfs = hdfs_fixture(plan=plan)
    record = hdfs.stage_file("input", 1 << 20)
    block = record.blocks[0]
    block.replicas = ("edison-slave-2", "edison-slave-3")   # both severed
    done = []

    def reader():
        yield from hdfs.read_block("edison-slave-0", block)
        done.append(sim.now)

    sim.process(reader())
    sim.run()
    # The copy still exists; the read waited out the cut instead of
    # declaring data loss.
    assert done and done[0] >= 5.0


def test_read_raises_when_no_intact_copy_exists():
    plan = FaultPlan(faults=(disk_failure("edison-slave-2", at=0.5),))
    sim, _, _, hdfs = hdfs_fixture(replication=1, plan=plan)
    record = hdfs.stage_file("input", 1 << 20)
    block = record.blocks[0]
    block.replicas = ("edison-slave-2",)
    failures = []

    def reader():
        yield sim.timeout(1.0)
        try:
            yield from hdfs.read_block("edison-slave-0", block)
        except BlockUnavailable:
            failures.append(sim.now)

    sim.process(reader())
    sim.run()
    assert failures == [1.0]          # fail-fast: the bytes are gone


# -- the repair loop ----------------------------------------------------------

def test_repair_requires_a_fault_injector():
    sim = Simulation()
    cluster = hadoop_cluster(sim, "edison", 2, racks=2)
    datanodes = [cluster.servers["edison-slave-0"],
                 cluster.servers["edison-slave-1"]]
    hdfs = Hdfs(sim, cluster.topology, datanodes, block_bytes=1 << 20,
                replication=1, rng=random.Random(1))
    with pytest.raises(RuntimeError):
        hdfs.enable_repair()
    # And repair cannot be armed twice.
    FaultInjector(cluster)
    hdfs.enable_repair()
    with pytest.raises(RuntimeError):
        hdfs.enable_repair()


def test_crash_triggers_confirmed_re_replication():
    plan = FaultPlan(faults=(
        node_crash("edison-slave-0", at=2.0, repair_s=60.0),))
    sim, _, _, hdfs = hdfs_fixture(plan=plan)
    ledger = DurabilityLedger(sim, hdfs)
    hdfs.enable_repair(confirm_s=1.0, ledger=ledger)
    record = hdfs.stage_file("input", 4 << 20)
    sim.run(until=30.0)
    monitor = hdfs.monitor
    assert monitor.repairs_completed > 0
    for block in record.blocks:
        readable = hdfs.readable_replicas(block)
        assert len(readable) == hdfs.replication
        assert "edison-slave-0" not in readable
    assert ledger.repairs == monitor.repairs_completed
    assert ledger.joules["re_replication"] > 0.0
    # Both ends of every stream were billed.
    assert len(ledger.node_joules) >= 2


def test_blip_inside_confirmation_window_is_never_repaired():
    plan = FaultPlan(faults=(
        node_crash("edison-slave-0", at=2.0, repair_s=0.5),))
    sim, _, _, hdfs = hdfs_fixture(plan=plan)
    hdfs.enable_repair(confirm_s=2.0)
    hdfs.stage_file("input", 4 << 20)
    sim.run(until=20.0)
    assert hdfs.monitor.repairs_completed == 0


def test_repair_defers_when_no_target_exists_then_resumes():
    # Two datanodes, r=2: when one dies there is nowhere to put a new
    # copy — the block parks as deferred until the node returns.
    plan = FaultPlan(faults=(
        node_crash("edison-slave-0", at=2.0, repair_s=10.0),))
    sim, _, _, hdfs = hdfs_fixture(slaves=2, plan=plan)
    hdfs.enable_repair(confirm_s=1.0)
    hdfs.stage_file("input", 2 << 20)
    sim.run(until=30.0)
    monitor = hdfs.monitor
    assert monitor.repairs_deferred > 0
    # After the node rebooted every block is fully replicated again.
    for block in hdfs.blocks.values():
        assert len(hdfs.readable_replicas(block)) == hdfs.replication


# -- block conservation under a rack cut (the satellite invariant) ------------

def test_single_rack_switch_down_never_loses_or_hides_a_block():
    """Rack-aware r=2 + one dead ToR: every block stays readable from
    the surviving side for the whole outage, conservation holds at
    every census, and after the heal every block is back to full
    replication."""
    plan = FaultPlan(faults=(
        switch_down("edison-rack-0", at=3.0, duration=8.0),))
    sim, _, _, hdfs = hdfs_fixture(rack_aware=True, plan=plan)
    ledger = DurabilityLedger(sim, hdfs, sample_interval_s=0.5)
    hdfs.enable_repair(confirm_s=1.0, ledger=ledger)
    record = hdfs.stage_file("input", 8 << 20)
    sim.process(ledger.run(until=40.0))
    majority = ["edison-slave-2", "edison-slave-3"]
    outcomes = {"unavailable": 0, "reads": 0}

    def reader(at):
        yield sim.timeout(at)
        for i, block in enumerate(record.blocks):
            try:
                yield from hdfs.read_block(majority[i % 2], block)
                outcomes["reads"] += 1
            except BlockUnavailable:       # pragma: no cover - the bug
                outcomes["unavailable"] += 1

    for at in (4.0, 6.0, 9.0):             # all inside the outage
        sim.process(reader(at))
    sim.run(until=41.0)
    assert outcomes["unavailable"] == 0
    assert outcomes["reads"] == 3 * len(record.blocks)
    assert ledger.conservation_violations == 0
    assert ledger.blocks_lost == 0
    assert ledger.loss_events == []
    assert ledger.unavailable_block_s == 0.0
    for block in hdfs.blocks.values():
        assert len(hdfs.readable_replicas(block)) >= hdfs.replication
    health = hdfs.health_summary()
    assert health["blocks_created"] == \
        health["blocks_live"] + health["blocks_lost"]
    assert health["under_replicated"] == 0


def test_disk_failure_with_r1_is_recorded_as_loss():
    plan = FaultPlan(faults=(disk_failure("edison-slave-1", at=2.0),))
    sim, _, _, hdfs = hdfs_fixture(replication=1, plan=plan)
    ledger = DurabilityLedger(sim, hdfs, sample_interval_s=0.5)
    hdfs.stage_file("input", 4 << 20)
    sim.process(ledger.run(until=10.0))
    sim.run(until=11.0)
    assert ledger.blocks_lost > 0
    assert len(ledger.loss_events) == 1
    event = ledger.loss_events[0]
    assert event["blocks"] == len(event["block_ids"]) == ledger.blocks_lost
    assert event["t"] >= 2.0
    # Conservation still holds: the census agrees blocks are *lost*,
    # not mislaid.
    assert ledger.conservation_violations == 0
    health = hdfs.health_summary()
    assert health["blocks_created"] == \
        health["blocks_live"] + health["blocks_lost"]


# -- the ledger ---------------------------------------------------------------

def test_ledger_charge_validation():
    sim, _, _, hdfs = hdfs_fixture()
    ledger = DurabilityLedger(sim, hdfs)
    with pytest.raises(ValueError):
        ledger.charge("gremlins", "edison-slave-0", 1.0, 1.0)
    with pytest.raises(ValueError):
        ledger.charge("re_replication", "edison-slave-0", -1.0, 1.0)
    with pytest.raises(ValueError):
        DurabilityLedger(sim, hdfs, sample_interval_s=0.0)


def test_ledger_integrates_under_replication_over_time():
    plan = FaultPlan(faults=(
        node_crash("edison-slave-0", at=1.0, repair_s=4.0),))
    sim, _, _, hdfs = hdfs_fixture(plan=plan)
    ledger = DurabilityLedger(sim, hdfs, sample_interval_s=1.0)
    hdfs.stage_file("input", 4 << 20)     # 4 blocks, r=2
    sim.process(ledger.run(until=10.0))
    sim.run(until=11.0)
    held = [b for b in hdfs.blocks.values()
            if "edison-slave-0" in b.replicas]
    # Step integration: each held block contributes ~4 block-seconds.
    assert ledger.under_replicated_block_s == \
        pytest.approx(4.0 * len(held), abs=2.0 * len(held))
    assert ledger.max_under_replicated == len(held)
    assert ledger.blocks_lost == 0        # the bytes survived the crash
    summary = ledger.summary()
    assert summary["samples"] > 5
    assert summary["conservation_violations"] == 0


def test_marginal_io_watts_follows_the_power_weights():
    sim, cluster, _, hdfs = hdfs_fixture()
    server = cluster.servers["edison-slave-0"]
    power = server.spec.power
    expected = (power.busy_w - power.idle_w) * (
        power.weights["disk"] + power.weights["net"])
    assert DurabilityLedger.marginal_io_watts(server) == \
        pytest.approx(expected)
    assert expected > 0.0


def test_to_repair_costs_mirrors_the_ledger():
    sim, _, _, hdfs = hdfs_fixture()
    ledger = DurabilityLedger(sim, hdfs)
    ledger.charge("re_replication", "edison-slave-0", 2.0, 3.0)
    ledger.charge("split_brain", "edison-slave-1", 1.0, 4.0)
    costs = ledger.to_repair_costs()
    assert costs.re_replication_j == pytest.approx(6.0)
    assert costs.split_brain_j == pytest.approx(4.0)
    assert costs.total_j == pytest.approx(10.0)
    assert ledger.total_joules == pytest.approx(10.0)


# -- attach_job ---------------------------------------------------------------

def test_attach_job_off_is_a_no_op():
    from repro.mapreduce import JOB_FACTORIES, JobRunner
    spec, config = JOB_FACTORIES["wordcount2"]("dell", 4)
    runner = JobRunner("dell", 4, config=config, seed=1, racks=2)
    assert attach_job(runner, None) is None
    assert attach_job(runner, DurabilityConfig.disabled()) is None
    assert runner.durability_ledger is None
    assert runner._phi is None
    assert runner.hdfs.monitor is None
    assert not runner.hdfs.rack_aware


def test_attach_job_arms_the_whole_plane():
    from repro.mapreduce import JOB_FACTORIES, JobRunner
    spec, config = JOB_FACTORIES["wordcount2"]("dell", 4)
    runner = JobRunner("dell", 4, config=config, seed=1, racks=2)
    FaultInjector(runner.cluster)
    ledger = attach_job(runner, DurabilityConfig.full())
    assert ledger is runner.durability_ledger
    assert runner._phi is not None
    assert runner.hdfs.monitor is not None
    assert runner.hdfs.monitor.detector is runner._phi
    assert runner.hdfs.rack_aware
    report = runner.run(spec)
    assert report.seconds > 0
    assert ledger.samples                 # the census actually sampled
    assert ledger.conservation_violations == 0


def test_attach_job_after_staging_is_rejected():
    from repro.mapreduce import JOB_FACTORIES, JobRunner
    spec, config = JOB_FACTORIES["wordcount2"]("dell", 4)
    runner = JobRunner("dell", 4, config=config, seed=1, racks=2)
    runner.hdfs.stage_file("too-late", 1 << 20)
    with pytest.raises(RuntimeError):
        attach_job(runner, DurabilityConfig.full())


# -- the plan and the report --------------------------------------------------

def day_plan(**overrides):
    faults = FaultPlan(faults=(
        switch_down("{platform}-rack-0", at=8.0, duration=12.0),
        disk_failure("{platform}-slave-2", at=36.0)))
    defaults = dict(name="test-day", faults=faults)
    defaults.update(overrides)
    return DurabilityPlan(**defaults)


def test_plan_validation():
    with pytest.raises(ValueError):
        day_plan(faults=FaultPlan.empty())
    with pytest.raises(ValueError):
        day_plan(slaves=1)
    with pytest.raises(ValueError):
        day_plan(racks=1)
    with pytest.raises(ValueError):
        day_plan(replications=())
    with pytest.raises(ValueError):
        day_plan(replications=(0,))
    with pytest.raises(ValueError):
        day_plan(slaves=4, replications=(5,))


def test_plan_roundtrip_and_platform_resolution(tmp_path):
    plan = day_plan()
    path = tmp_path / "day.json"
    plan.save(str(path))
    assert DurabilityPlan.load(str(path)) == plan
    resolved = plan.faults_for("edison")
    assert resolved.faults[0].rack == "edison-rack-0"
    assert resolved.faults[1].node == "edison-slave-2"
    # The committed template itself is untouched.
    assert plan.faults.faults[0].rack == "{platform}-rack-0"


def synthetic_arm(**overrides):
    defaults = dict(platform="edison", rack_aware=True, replication=2,
                    blocks_created=16, day_seconds=100.0, joules=1000.0)
    defaults.update(overrides)
    return DurabilityArm(**defaults)


def test_report_knee_and_downtime_check():
    arms = (synthetic_arm(replication=1, blocks_lost=2, loss_events=1,
                          job_failed=True),
            synthetic_arm(replication=2),
            synthetic_arm(replication=3, joules=1100.0))
    controls = (synthetic_arm(replication=3, control=True,
                              joules=900.0),)
    report = DurabilityReport("day", "detail", arms, controls)
    assert report.knee("edison") == 2
    assert report.partition_downtime_clean()
    assert not report.arm("edison", True, 1).durable
    assert report.arm("edison", True, 2).durable
    with pytest.raises(KeyError):
        report.arm("edison", False, 2)
    with pytest.raises(KeyError):
        report.control("dell")
    # A fault arm that books downtime the control never saw is a leak.
    leaky = (arms[0], arms[1],
             synthetic_arm(replication=3, downtime_s=5.0))
    assert not DurabilityReport("day", "d", leaky,
                                controls).partition_downtime_clean()


def test_report_roundtrip_and_lines():
    arms = (synthetic_arm(replication=1, blocks_lost=2, job_failed=True),
            synthetic_arm(replication=2, repairs_completed=4,
                          re_replication_j=12.5))
    report = DurabilityReport("day-v1", "2 racks", arms,
                              (synthetic_arm(replication=2,
                                             control=True),))
    data = report.to_dict()
    assert data["knee"] == {"edison": 2}
    assert data["partition_downtime_clean"] is True
    again = DurabilityReport.from_dict(data)
    assert again.arm("edison", True, 2).repairs_completed == 4
    assert again.control("edison").control
    text = "\n".join(report.lines())
    assert "verdict [edison]: r=2 rack-aware is the knee" in text
    assert "FAIL" in text              # the r=1 arm's job column
    assert "zero downtime (clean)" in text


def test_arm_durable_and_label():
    arm = synthetic_arm()
    assert arm.durable and arm.label == "edison/rack-aware/r2"
    assert not synthetic_arm(job_failed=True).durable
    assert not synthetic_arm(blocks_lost=1).durable
    assert synthetic_arm(rack_aware=False, control=True).label == \
        "edison/oblivious/r2/control"
    assert synthetic_arm().same_rack_read_fraction is None
    assert synthetic_arm(same_rack_read_bytes=3.0,
                         cross_rack_read_bytes=1.0
                         ).same_rack_read_fraction == pytest.approx(0.75)


def test_one_arm_end_to_end_on_dell():
    from repro.durability.report import _run_arm
    plan = day_plan(faults=FaultPlan(faults=(
        switch_down("{platform}-rack-0", at=8.0, duration=12.0),)),
        settle_s=15.0)
    arm = _run_arm(plan, "dell", True, 2, plan.faults_for("dell"))
    assert arm.durable
    assert arm.blocks_lost == 0
    assert arm.conservation_violations == 0
    assert arm.repairs_completed > 0
    assert arm.re_replication_j > 0.0
    assert arm.duplicate_kills == arm.zombies_started
    assert arm.downtime_s == 0.0
    assert arm.unreachable_s == pytest.approx(4 * 12.0)
