"""DVFS: P-state tables, governors, the plane, and the scorecard.

The load-bearing contract is bit-identity: with DVFS off (the
default), every P-state table must be invisible — no multiply, no
event, no RNG draw.  The armed paths are then checked for the physics
the package claims: down-clocks stretch service times by ``1/f``,
shrink busy watts by ``f**2``, compose multiplicatively with thermal
throttles, and restore bit-exactly.
"""

import random
from dataclasses import asdict

import pytest

from repro.dvfs import (
    DvfsConfig, DvfsPlane, GovernorConfig, LoadPoint, OndemandGovernor,
    PerformanceGovernor, PowersaveGovernor, ProportionalityScorecard,
    attach_job, attach_web, make_governor, measure_proportionality,
)
from repro.hardware import (
    DELL_R620, EDISON, Cpu, CpuSpec, NOMINAL_PSTATE, PState, PowerSpec,
    derive_pstates,
)
from repro.sim import Simulation


# -- P-state tables -----------------------------------------------------------

def test_pstate_validation():
    PState("P1", 0.5, 0.25)
    with pytest.raises(ValueError):
        PState("bad", 0.0, 0.5)
    with pytest.raises(ValueError):
        PState("bad", 1.1, 0.5)
    with pytest.raises(ValueError):
        PState("bad", 0.5, 0.0)


def test_derive_pstates_square_law_and_names():
    states = derive_pstates((1.0, 0.8, 0.5))
    assert [s.name for s in states] == ["P0", "P1", "P2"]
    assert states[0] == PState("P0", 1.0, 1.0)
    assert states[1].busy_w_factor == pytest.approx(0.64)
    assert states[2].busy_w_factor == pytest.approx(0.25)
    # P0 must be *exactly* nominal, not approximately.
    assert states[0].dmips_factor == 1.0
    assert states[0].busy_w_factor == 1.0


def test_derive_pstates_validation():
    with pytest.raises(ValueError):
        derive_pstates(())
    with pytest.raises(ValueError):
        derive_pstates((0.9, 0.8))          # first factor not 1.0
    with pytest.raises(ValueError):
        derive_pstates((1.0, 0.8, 0.8))     # not strictly decreasing
    with pytest.raises(ValueError):
        derive_pstates((1.0, 0.8), power_exponent=0.5)


def test_cpuspec_pstate_table_validation():
    with pytest.raises(ValueError):
        CpuSpec(cores=1, threads_per_core=1, dmips_per_thread=100.0,
                pstates=())
    with pytest.raises(ValueError):
        CpuSpec(cores=1, threads_per_core=1, dmips_per_thread=100.0,
                pstates=(PState("P0", 0.9, 0.81),))
    with pytest.raises(ValueError):
        CpuSpec(cores=1, threads_per_core=1, dmips_per_thread=100.0,
                pstates=(NOMINAL_PSTATE, PState("P1", 0.8, 0.64),
                         PState("P2", 0.9, 0.81)))


def test_profiles_carry_pstate_tables():
    for spec in (EDISON, DELL_R620):
        states = spec.cpu.pstates
        assert len(states) > 1
        assert states[0] == NOMINAL_PSTATE
        assert all(b.dmips_factor < a.dmips_factor
                   for a, b in zip(states, states[1:]))


# -- Cpu: re-rating and composition -------------------------------------------

def _drive(cpu, work_mi):
    """Run one burst to completion; return its duration."""
    sim = cpu.sim
    start = sim.now
    done = []

    def burst():
        yield from cpu.execute(work_mi)
        done.append(sim.now - start)
    sim.process(burst())
    sim.run()
    return done[0]


def _fresh_cpu():
    sim = Simulation()
    spec = CpuSpec(cores=2, threads_per_core=1, dmips_per_thread=100.0,
                   pstates=derive_pstates((1.0, 0.8, 0.5)))
    return Cpu(sim, spec)


def test_set_pstate_rerates_next_slice():
    cpu = _fresh_cpu()
    nominal = _drive(cpu, 100.0)
    assert nominal == pytest.approx(1.0)
    cpu.set_pstate(2)
    assert _drive(cpu, 100.0) == pytest.approx(nominal / 0.5)
    assert cpu.busy_time(100.0) == pytest.approx(2.0)
    # Bit-exact restore: back at P0 the duration is the float it was.
    cpu.set_pstate(0)
    assert _drive(cpu, 100.0) == nominal
    assert cpu.pstate == NOMINAL_PSTATE
    with pytest.raises(ValueError):
        cpu.set_pstate(3)
    with pytest.raises(ValueError):
        cpu.set_pstate(-1)


def test_throttle_and_pstate_compose_multiplicatively():
    cpu = _fresh_cpu()
    nominal = _drive(cpu, 100.0)
    cpu.throttle = 0.5
    cpu.set_pstate(1)               # dmips_factor 0.8
    stretched = _drive(cpu, 100.0)
    assert stretched == pytest.approx(nominal / (0.5 * 0.8))
    assert cpu.busy_time(100.0) == pytest.approx(1.0 / (0.5 * 0.8))
    # Lifting either knob alone leaves the other's stretch in place.
    cpu.throttle = 1.0
    assert _drive(cpu, 100.0) == pytest.approx(nominal / 0.8)
    # Restoring both gives back the bit-exact nominal duration: the
    # throttle x P-state guards must not leave a residual multiply.
    cpu.set_pstate(0)
    assert _drive(cpu, 100.0) == nominal
    assert cpu.busy_time(100.0) == cpu.service_time(100.0)


def test_power_pstate_rescales_only_the_cpu_share():
    spec = PowerSpec(idle_w=10.0, busy_w=110.0, adapter_w=1.0)
    p1 = PState("P1", 0.8, 0.64)
    util = {"cpu": 1.0, "net": 0.5}
    nominal = spec.power(util)
    governed = spec.power(util, pstate=p1)
    span = spec.busy_w - spec.idle_w
    cpu_part = spec.weights["cpu"] * 1.0
    assert governed == pytest.approx(
        nominal - span * cpu_part * (1.0 - p1.busy_w_factor))
    # None and P0 take the exact historical expression.
    assert spec.power(util, pstate=None) == nominal
    assert spec.power(util, pstate=NOMINAL_PSTATE) == nominal
    assert spec.max_w_at(NOMINAL_PSTATE) == spec.max_w
    assert spec.max_w_at(p1) == pytest.approx(
        spec.idle_w + span * 0.64 + spec.adapter_w)
    # Non-CPU components are untouched: with the CPU idle a deep
    # P-state changes nothing.
    assert spec.power({"net": 0.5}, pstate=p1) == spec.power({"net": 0.5})


# -- governors ----------------------------------------------------------------

def test_static_governor_decisions():
    perf, save = PerformanceGovernor(), PowersaveGovernor()
    assert perf.initial_index(4) == 0
    assert perf.decide(1.0, 0, 4) is None
    assert perf.decide(0.0, 2, 4) == 0
    assert save.initial_index(4) == 3
    assert save.decide(1.0, 3, 4) is None
    assert save.decide(1.0, 0, 4) == 3


def test_ondemand_governor_decisions():
    governor = OndemandGovernor(GovernorConfig(kind="ondemand"))
    assert governor.initial_index(4) == 0      # cold fleet at nominal
    # At/above the up threshold: jump straight to P0.
    assert governor.decide(0.80, 2, 4) == 0
    assert governor.decide(0.95, 0, 4) is None
    # At/below the down threshold: step down exactly one.
    assert governor.decide(0.30, 0, 4) == 1
    assert governor.decide(0.10, 2, 4) == 3
    assert governor.decide(0.0, 3, 4) is None  # already at the bottom
    # The hold band between the thresholds.
    assert governor.decide(0.55, 1, 4) is None


def test_make_governor_and_config_validation():
    assert make_governor(GovernorConfig(kind="performance")).static
    assert not make_governor(GovernorConfig(kind="ondemand")).static
    with pytest.raises(ValueError):
        GovernorConfig(kind="conservative")
    with pytest.raises(ValueError):
        GovernorConfig(sampling_interval_s=0.0)
    with pytest.raises(ValueError):
        GovernorConfig(up_threshold=0.5, down_threshold=0.5)
    with pytest.raises(ValueError):
        GovernorConfig(metric_window_s=-1.0)


def test_dvfs_config_roundtrip():
    config = DvfsConfig.ondemand(sampling_interval_s=0.25,
                                 up_threshold=0.9)
    again = DvfsConfig.from_dict(config.to_dict())
    assert again == config
    assert not DvfsConfig.disabled().enabled
    assert DvfsConfig.performance().governor.kind == "performance"
    assert DvfsConfig.powersave().governor.kind == "powersave"


# -- the plane ----------------------------------------------------------------

def test_attach_helpers_are_noops_when_disabled():
    from repro.mapreduce import JOB_FACTORIES, JobRunner
    from repro.web import WebServiceDeployment

    deployment = WebServiceDeployment("edison", "1/8", seed=41)
    assert attach_web(deployment, None) is None
    assert attach_web(deployment, DvfsConfig.disabled()) is None
    spec, config = JOB_FACTORIES["wordcount2"]("edison", 4)
    runner = JobRunner("edison", 4, config=config, seed=41)
    assert attach_job(runner, None) is None
    assert attach_job(runner, DvfsConfig.disabled()) is None
    # Nothing armed: every CPU still parked at P0.
    assert all(s.cpu.pstate_index == 0
               for s in deployment.cluster.metered_servers)


def test_disabled_dvfs_is_bit_identical():
    from repro.web import WebServiceDeployment

    def run(dvfs):
        deployment = WebServiceDeployment("edison", "1/8", seed=41)
        assert attach_web(deployment, dvfs, until=2.0) is None
        return asdict(deployment.run_level(12, duration=2.0, warmup=0.5))

    assert run(None) == run(DvfsConfig.disabled())


def test_plane_refuses_bad_construction():
    from repro.web import WebServiceDeployment

    deployment = WebServiceDeployment("edison", "1/8", seed=41)
    with pytest.raises(ValueError):
        DvfsPlane(deployment.sim, deployment.cluster.metered_servers,
                  DvfsConfig.disabled())
    with pytest.raises(ValueError):
        DvfsPlane(deployment.sim, [], DvfsConfig.performance())
    with pytest.raises(ValueError):
        # ondemand reads the TSDB; without telemetry there is none.
        DvfsPlane(deployment.sim, deployment.cluster.metered_servers,
                  DvfsConfig.ondemand())


def test_powersave_plane_parks_the_fleet_deep():
    from repro.web import WebServiceDeployment

    deployment = WebServiceDeployment("edison", "1/8", seed=41)
    plane = attach_web(deployment, DvfsConfig.powersave(), until=2.0)
    servers = deployment.cluster.metered_servers
    deepest = len(servers[0].cpu.spec.pstates) - 1
    assert all(s.cpu.pstate_index == deepest for s in servers)
    assert plane.counters["transitions"] == len(servers)
    deployment.run_level(12, duration=2.0, warmup=0.5)
    residency = plane.residency_s(2.0)
    assert residency[f"P{deepest}"] == pytest.approx(2.0 * len(servers))
    summary = plane.summary(2.0)
    assert summary["governor"] == "powersave"
    with pytest.raises(RuntimeError):
        plane.start()               # double start


def test_ondemand_plane_downclocks_an_underloaded_fleet():
    from repro.telemetry import Telemetry
    from repro.web import WebServiceDeployment
    from repro.web.loadshape import DiurnalShape, ShapedLoad

    deployment = WebServiceDeployment("edison", "1/8", seed=41,
                                      trace=__import__(
                                          "repro.trace",
                                          fromlist=["Tracer"]).Tracer())
    telemetry = Telemetry()
    telemetry.attach_web(deployment, until=6.0)
    plane = attach_web(deployment, DvfsConfig.ondemand(), until=6.0)
    rate = 0.15 * deployment.target_rps()
    shape = ShapedLoad(DiurnalShape(base_rps=rate, peak_rps=rate,
                                    period_s=6.0))
    deployment.run_shaped(shape, 6.0, calls=5)
    # A mostly idle fleet must have stepped down...
    assert plane.counters["transitions"] > 0
    residency = plane.residency_s(6.0)
    assert any(name != "P0" and seconds > 0
               for name, seconds in residency.items())
    # ...with every decision on the record: the transition log, the
    # TSDB series, and the trace instants all agree.
    logged = sum(len(log) for log in plane.transitions.values())
    assert logged == plane.counters["transitions"]
    assert telemetry.db.select("cpu_pstate"), \
        "governor decisions must land in the TSDB"
    from repro.causality import pstate_transitions
    marks = pstate_transitions(deployment.sim.trace.log)
    assert sum(len(m) for m in marks.values()) == logged


# -- the scorecard ------------------------------------------------------------

def _card(powers, idle_w=4.0):
    points = tuple(
        LoadPoint(fraction=round(0.25 * (i + 1), 2),
                  offered_rps=100.0 * (i + 1), ok_calls=1000 * (i + 1),
                  window_s=10.0, mean_power_w=w)
        for i, w in enumerate(powers))
    return ProportionalityScorecard(platform="edison", scale="1/8",
                                    governor="nominal", idle_w=idle_w,
                                    points=points)


def test_scorecard_figures():
    # Linear-with-offset: P(u) = 4 + 6u at u = .25 .. 1.0.
    card = _card((5.5, 7.0, 8.5, 10.0))
    assert card.peak_w == 10.0
    assert card.dynamic_range == pytest.approx(0.6)
    # Gap at each rung: (P(u) - u * peak) / peak = (4 - 4u) / 10.
    assert card.proportionality_gap == pytest.approx(
        (0.3 + 0.2 + 0.1 + 0.0) / 4)
    assert card.best_point is card.points[-1]
    again = ProportionalityScorecard.from_dict(card.to_dict())
    assert again == card
    assert any("dynamic range" in line for line in card.lines())
    with pytest.raises(ValueError):
        _card(())
    with pytest.raises(ValueError):
        _card((5.0,), idle_w=-1.0)


def test_measure_proportionality_ladder():
    card = measure_proportionality("edison", scale="1/8",
                                   duration_s=2.0, warmup_s=0.5,
                                   fractions=(0.2, 1.0))
    assert card.governor == "nominal"
    assert card.idle_w > 0
    low, high = card.points
    assert low.mean_power_w < high.mean_power_w
    assert high.ok_calls > low.ok_calls
    assert 0.0 < card.dynamic_range < 1.0
    with pytest.raises(ValueError):
        measure_proportionality("edison", duration_s=1.0, warmup_s=1.0)
    with pytest.raises(ValueError):
        measure_proportionality("edison", fractions=())
    with pytest.raises(ValueError):
        measure_proportionality("edison", duration_s=2.0, warmup_s=0.5,
                                fractions=(1.5,))


# -- the sweep report ---------------------------------------------------------

def _arm(governor, joules, attained=True, platform="edison",
         shape="fixed"):
    from repro.dvfs import DvfsArm
    return DvfsArm(
        governor=governor, platform=platform, shape_name=shape,
        seconds=60.0, joules=joules, ok_calls=1000, errors=0,
        client_failures=0, availability=1.0, availability_met=attained,
        latency_met=attained, p95_s=0.02, mean_power_w=joules / 60.0,
        transitions=0 if governor == "performance" else 7)


def test_report_wins_require_joules_and_slo():
    from repro.dvfs import DvfsReport
    report = DvfsReport(
        plan_name="t", detail="d",
        arms=(_arm("performance", 100.0), _arm("ondemand", 90.0),
              _arm("performance", 100.0, shape="flash"),
              _arm("ondemand", 90.0, attained=False, shape="flash"),
              _arm("performance", 100.0, shape="diurnal"),
              _arm("ondemand", 110.0, shape="diurnal")))
    # Fewer joules at equal SLO wins; missing the SLO the rival meets,
    # or burning more, does not.
    assert report.ondemand_wins() == ["edison/fixed"]
    assert report.arm("edison", "fixed", "ondemand").joules == 90.0
    with pytest.raises(KeyError):
        report.arm("dell", "fixed", "ondemand")
    again = DvfsReport.from_dict(report.to_dict())
    assert again.ondemand_wins() == report.ondemand_wins()
    assert any("verdict" in line for line in report.lines())


def test_committed_plan_roundtrips(tmp_path):
    import os

    from repro.dvfs import DvfsPlan
    path = os.path.join(os.path.dirname(__file__), "..", "experiments",
                        "dvfs_day.json")
    plan = DvfsPlan.load(path)
    assert set(plan.shapes) == {"fixed", "diurnal", "flash"}
    assert plan.ondemand.kind == "ondemand"
    copy = tmp_path / "plan.json"
    plan.save(str(copy))
    assert DvfsPlan.load(str(copy)) == plan
    with pytest.raises(ValueError):
        DvfsPlan(name="bad", shapes={}, duration_s=10.0)
    with pytest.raises(ValueError):
        DvfsPlan(name="bad", shapes=plan.shapes, duration_s=10.0,
                 ondemand=GovernorConfig(kind="performance"))


def test_tiny_sweep_runs_end_to_end():
    from repro.dvfs import DvfsPlan, dvfs_experiment
    from repro.web.loadshape import DiurnalShape, ShapedLoad

    plan = DvfsPlan(
        name="tiny",
        shapes={"diurnal": ShapedLoad(DiurnalShape(
            base_rps=40.0, peak_rps=260.0, period_s=8.0))},
        duration_s=8.0, calls=4)
    report = dvfs_experiment(plan, governors=("performance", "ondemand"),
                             platforms=("edison",), scorecards=False)
    assert [a.label for a in report.arms] == [
        "edison/diurnal/performance", "edison/diurnal/ondemand"]
    perf, ondemand = report.arms
    assert perf.transitions == 0
    assert ondemand.transitions > 0
    assert perf.joules > 0 and ondemand.joules > 0
    # Residency partitions node-seconds: every governed server accounts
    # for the whole day across its states.
    from repro.web import WebServiceDeployment
    servers = len(WebServiceDeployment("edison", plan.scale("edison"))
                  .cluster.metered_servers)
    assert sum(ondemand.residency_s.values()) == pytest.approx(
        8.0 * servers)
