"""Unit tests for energy metering and cluster composition."""

import pytest

from repro.cluster import (
    Cluster, dell_cluster, edison_cluster, hadoop_cluster, web_cluster,
)
from repro.core import paperdata as paper
from repro.energy import EnergyReport, PowerMeter, efficiency_gain, \
    work_done_per_joule
from repro.hardware import DELL_R620, EDISON, make_server
from repro.sim import Simulation


# -- PowerMeter ---------------------------------------------------------------

def test_meter_idle_energy_matches_idle_power():
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    meter = PowerMeter(sim, [server], interval=1.0)
    meter.start(until=10)
    sim.run()
    assert meter.energy_joules() == pytest.approx(10 * EDISON.power.min_w)
    assert meter.mean_power() == pytest.approx(EDISON.power.min_w)


def test_meter_sees_busy_power():
    sim = Simulation()
    server = make_server(sim, DELL_R620, "d0")
    meter = PowerMeter(sim, [server], interval=0.5)

    def hog():
        for _ in range(server.spec.cpu.vcores):
            sim.process(server.cpu.execute(
                10 * server.spec.cpu.vcore_dmips))
        yield sim.timeout(0)

    sim.process(hog())
    meter.start(until=10)
    sim.run()
    # CPU pegged for the whole window: power near busy (cpu weight < 1).
    assert meter.mean_power() > DELL_R620.power.min_w + 20


def test_meter_requires_servers_and_valid_interval():
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    with pytest.raises(ValueError):
        PowerMeter(sim, [], interval=1.0)
    with pytest.raises(ValueError):
        PowerMeter(sim, [server], interval=0)


def test_meter_cannot_start_twice():
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    meter = PowerMeter(sim, [server])
    meter.start(until=1)
    with pytest.raises(RuntimeError):
        meter.start(until=1)


# -- EnergyReport -------------------------------------------------------------

def test_energy_report_metrics():
    report = EnergyReport(seconds=100, joules=5000, work_units=1)
    assert report.mean_watts == pytest.approx(50)
    assert report.work_per_joule == pytest.approx(1 / 5000)


def test_energy_report_validation():
    with pytest.raises(ValueError):
        EnergyReport(seconds=0, joules=10)
    with pytest.raises(ValueError):
        EnergyReport(seconds=1, joules=-1)


def test_work_done_per_joule():
    assert work_done_per_joule(10, 5) == 2
    with pytest.raises(ValueError):
        work_done_per_joule(10, 0)


def test_efficiency_gain_equal_work_is_energy_ratio():
    edison = EnergyReport(seconds=310, joules=17670)
    dell = EnergyReport(seconds=213, joules=40214)
    # The paper's wordcount claim: 2.28x more work-done-per-joule.
    assert efficiency_gain(edison, dell) == pytest.approx(2.28, abs=0.01)


# -- Cluster ------------------------------------------------------------------

def test_edison_cluster_idle_busy_watts_match_table3():
    sim = Simulation()
    cluster = edison_cluster(sim, nodes=35)
    assert cluster.idle_watts() == pytest.approx(
        paper.T3_EDISON_CLUSTER35_IDLE_W)
    assert cluster.busy_watts() == pytest.approx(
        paper.T3_EDISON_CLUSTER35_BUSY_W)


def test_dell_cluster_idle_busy_watts_match_table3():
    sim = Simulation()
    cluster = dell_cluster(sim, nodes=3)
    assert cluster.idle_watts() == pytest.approx(
        paper.T3_DELL_CLUSTER3_IDLE_W)
    assert cluster.busy_watts() == pytest.approx(
        paper.T3_DELL_CLUSTER3_BUSY_W)


def test_hadoop_cluster_excludes_master_from_metering():
    sim = Simulation()
    cluster = hadoop_cluster(sim, "edison", slaves=35)
    assert len(cluster) == 36
    assert len(cluster.metered_servers) == 35
    assert all(s.platform == "edison" for s in cluster.metered_servers)
    assert cluster.servers["master"].platform == "dell"


def test_hadoop_cluster_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        hadoop_cluster(sim, "arm", slaves=2)
    with pytest.raises(ValueError):
        hadoop_cluster(sim, "edison", slaves=0)


@pytest.mark.parametrize("scale,web,cache", [
    ("full", 24, 11), ("1/2", 12, 6), ("1/4", 6, 3), ("1/8", 3, 2),
])
def test_web_cluster_edison_counts_match_table6(scale, web, cache):
    sim = Simulation()
    cluster = web_cluster(sim, "edison", scale)
    webs = [n for n in cluster.servers if n.startswith("web-")]
    caches = [n for n in cluster.servers if n.startswith("cache-")]
    assert len(webs) == web
    assert len(caches) == cache


def test_web_cluster_dell_full_counts():
    sim = Simulation()
    cluster = web_cluster(sim, "dell", "full")
    webs = [n for n in cluster.servers if n.startswith("web-")]
    caches = [n for n in cluster.servers if n.startswith("cache-")]
    assert (len(webs), len(caches)) == (2, 1)
    # Shared DB + clients exist but are unmetered.
    assert "db-0" in cluster.servers
    assert "client-7" in cluster.servers
    assert len(cluster.metered_servers) == 3


def test_web_cluster_dell_has_no_small_scales():
    sim = Simulation()
    with pytest.raises(ValueError):
        web_cluster(sim, "dell", "1/4")
    with pytest.raises(ValueError):
        web_cluster(sim, "dell", "1/16")
    with pytest.raises(ValueError):
        web_cluster(sim, "vax", "full")


def test_cluster_add_many_and_iteration():
    sim = Simulation()
    cluster = Cluster(sim)
    servers = cluster.add_many(EDISON, 4, prefix="n")
    assert len(cluster) == 4
    assert [s.name for s in cluster] == [s.name for s in servers]
    assert len(cluster.by_platform("edison")) == 4
    assert cluster.by_platform("dell") == []
    with pytest.raises(ValueError):
        cluster.add_many(EDISON, 0, prefix="x")


def test_cluster_meter_lifecycle():
    sim = Simulation()
    cluster = edison_cluster(sim, nodes=2)
    with pytest.raises(RuntimeError):
        _ = cluster.meter
    meter = cluster.attach_meter(interval=1.0)
    assert cluster.meter is meter
    with pytest.raises(RuntimeError):
        cluster.attach_meter()
