"""Failure-injection tests: task retry, node interrupts, job failure."""

from dataclasses import replace

import pytest

from repro.mapreduce import JobRunner, run_job
from repro.mapreduce.runtime import JobFailed, MAX_TASK_ATTEMPTS
from repro.sim import Interrupt, Simulation
from tests.test_mapreduce_jobs import small_spec


def test_injected_failures_are_retried_and_job_completes():
    faulty = replace(small_spec(), map_failure_rate=0.3)
    report = run_job("edison", 4, faulty)
    assert report.seconds > 0
    # All maps eventually completed despite the losses.
    assert report.timeline.map_progress.values[-1] == pytest.approx(1.0)


def test_injected_failures_cost_time():
    clean = run_job("edison", 4, small_spec())
    faulty = run_job("edison", 4, replace(small_spec(),
                                          map_failure_rate=0.3))
    assert faulty.seconds > clean.seconds


def test_failure_rate_validation():
    with pytest.raises(ValueError):
        replace(small_spec(), map_failure_rate=1.0)
    with pytest.raises(ValueError):
        replace(small_spec(), map_failure_rate=-0.1)


def test_certain_failure_fails_the_job():
    runner = JobRunner("edison", 4)
    doomed = replace(small_spec(), map_failure_rate=0.999999)
    with pytest.raises(JobFailed):
        runner.run(doomed)


def test_max_attempts_is_hadoop_default():
    assert MAX_TASK_ATTEMPTS == 4


def test_interrupting_a_simulated_process_mid_io():
    """The kernel's Interrupt reaches a process blocked on disk I/O."""
    from repro.hardware import EDISON, make_server
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    outcomes = []

    def io_task():
        try:
            yield from server.storage.read(100e6)   # several seconds
            outcomes.append("finished")
        except Interrupt as interrupt:
            outcomes.append(f"killed:{interrupt.cause}")

    def killer(victim):
        yield sim.timeout(0.5)
        victim.interrupt(cause="node-power-loss")

    victim = sim.process(io_task())
    sim.process(killer(victim))
    sim.run()
    assert outcomes == ["killed:node-power-loss"]


def test_failed_attempt_counter_increments():
    runner = JobRunner("edison", 4)
    faulty = replace(small_spec(), map_failure_rate=0.3)
    runner.run(faulty)
    # The runner retried at least one attempt at a 30 % loss rate
    # across 16 maps (deterministic under the fixed seed).
    # The counter lives on the internal job state; expose via a fresh
    # run and the report's completeness instead.
    report = run_job("edison", 4, faulty, seed=77)
    assert report.timeline.map_progress.values[-1] == pytest.approx(1.0)
