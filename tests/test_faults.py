"""Tests for repro.faults: models, injector mechanics, the no-fault
bit-identity guarantee, and the headline kill-one-node experiments."""

import math
from dataclasses import replace

import pytest

from repro.cluster import edison_cluster
from repro.faults import (AvailabilityReport, Fault, FaultInjector,
                          FaultPlan, RecurringFault, disk_failure,
                          disk_stall, nic_degrade, node_crash, power_event,
                          single_node_kill, web_kill_experiment)
from repro.mapreduce import JobRunner, run_job
from repro.mapreduce.runtime import JobFailed
from repro.sim import Simulation
from repro.trace import Tracer
from repro.web import WebServiceDeployment
from tests.test_mapreduce_jobs import small_spec


# -- models -------------------------------------------------------------------

def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError):
        Fault(kind="gremlin", node="a", at=0, duration=1)
    with pytest.raises(ValueError):
        RecurringFault(kind="gremlin", node="a", mtbf_s=10, mttr_s=1)


def test_fault_timing_validation():
    with pytest.raises(ValueError):
        node_crash("a", at=-1, repair_s=5)
    with pytest.raises(ValueError):
        node_crash("a", at=0, repair_s=0)
    with pytest.raises(ValueError):
        Fault(kind="crash", node="", at=0, duration=1)
    with pytest.raises(ValueError):
        power_event("a", at=0, outage_s=1, reboot_s=-1)


def test_only_disk_fail_may_be_permanent():
    with pytest.raises(ValueError):
        Fault(kind="crash", node="a", at=0)        # duration defaults to inf
    fault = disk_failure("a", at=3)
    assert math.isinf(fault.duration)


def test_nic_factor_and_stall_slowdown_bounds():
    with pytest.raises(ValueError):
        nic_degrade("a", at=0, duration=1, factor=0.0)
    with pytest.raises(ValueError):
        nic_degrade("a", at=0, duration=1, factor=1.5)
    assert nic_degrade("a", at=0, duration=1, factor=1.0).factor == 1.0
    with pytest.raises(ValueError):
        disk_stall("a", at=0, duration=1, slowdown=0.5)


def test_recurring_disk_fail_rejected():
    with pytest.raises(ValueError):
        RecurringFault(kind="disk_fail", node="a", mtbf_s=100, mttr_s=10)
    with pytest.raises(ValueError):
        RecurringFault(kind="crash", node="a", mtbf_s=0, mttr_s=10)


def test_plan_nodes_and_check_against():
    plan = FaultPlan(
        faults=(node_crash("a", 1, 2), node_crash("a", 9, 2),
                disk_failure("b", 5)),
        recurring=(RecurringFault(kind="nic", node="c", mtbf_s=50,
                                  mttr_s=5),))
    assert len(plan) == 4
    assert not plan.is_empty
    assert plan.nodes() == ["a", "b", "c"]
    plan.check_against(["a", "b", "c", "d"])
    with pytest.raises(ValueError):
        plan.check_against(["a", "b"])
    assert FaultPlan.empty().is_empty


def test_plan_save_load_roundtrip(tmp_path):
    plan = FaultPlan(
        faults=(power_event("n0", at=2, outage_s=5, reboot_s=3),
                nic_degrade("n1", at=1, duration=4, factor=0.25),
                disk_failure("n2", at=7)),
        recurring=(RecurringFault(kind="disk_stall", node="n0", mtbf_s=60,
                                  mttr_s=2, slowdown=8, start=10),))
    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_plan_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ValueError):
        FaultPlan.load(str(path))
    path.write_text('{"faults": [{"kind": "crash", "node": "a", "att": 1}]}')
    with pytest.raises(ValueError):
        FaultPlan.load(str(path))
    path.write_text('{"surprise": []}')
    with pytest.raises(ValueError):
        FaultPlan.load(str(path))


# -- injector mechanics -------------------------------------------------------

def test_empty_plan_schedules_nothing():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster)
    sim.run()
    assert sim.now == 0          # no fault processes were created
    assert injector.records == []
    assert all(injector.is_up(n) for n in cluster.servers)


def test_second_injector_rejected():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    FaultInjector(cluster)
    with pytest.raises(RuntimeError):
        FaultInjector(cluster)


def test_plan_checked_against_cluster_nodes():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    with pytest.raises(ValueError):
        FaultInjector(cluster, single_node_kill("no-such-node", 1.0))


def test_crash_status_detection_and_mttr():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster, FaultPlan(
        faults=(node_crash("edison-0", at=1.0, repair_s=2.0),)),
        detection_s=0.25)
    sim.run(until=1.1)
    assert not injector.is_up("edison-0")
    assert not injector.detected_down("edison-0")   # within the window
    assert injector.is_up("edison-1")
    sim.run(until=1.5)
    assert injector.detected_down("edison-0")
    assert injector.went_down_since("edison-0", 0.5)
    assert not injector.went_down_since("edison-0", 2.0)
    sim.run(until=4.0)
    assert injector.is_up("edison-0")
    assert injector.downtime("edison-0") == pytest.approx(2.0)
    assert injector.mean_mttr() == pytest.approx(2.0)
    # 2 nodes x 4 s = 8 node-seconds, 2 lost.
    assert injector.mean_availability(until=4.0) == pytest.approx(0.75)
    report = AvailabilityReport.from_injector(injector, until=4.0)
    assert report.faults_injected == 1
    assert report.open_outages == 0
    assert report.mean_availability == pytest.approx(0.75)
    assert len(report.lines()) == 4


def test_power_fault_draws_zero_then_idle_watts():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster, FaultPlan(faults=(
        power_event("edison-0", at=1.0, outage_s=2.0, reboot_s=1.0),
        node_crash("edison-1", at=1.0, repair_s=3.0))))
    unpowered = cluster.servers["edison-0"]
    crashed = cluster.servers["edison-1"]
    util = unpowered.utilization_window()
    healthy_w = unpowered.spec.power.power(util)
    sim.run(until=2.0)           # outage in progress
    assert injector.node_watts(unpowered, util) == 0.0
    assert injector.node_watts(crashed, util) == crashed.spec.power.min_w
    sim.run(until=3.5)           # power restored, still rebooting at idle
    assert injector.node_watts(unpowered, util) == unpowered.spec.power.min_w
    assert not injector.is_up("edison-0")
    sim.run(until=5.0)           # both repaired
    assert injector.node_watts(unpowered, util) == healthy_w
    assert injector.is_up("edison-0") and injector.is_up("edison-1")
    # The outage counts reboot time too: down 1.0 -> 4.0.
    assert injector.downtime("edison-0") == pytest.approx(3.0)


def test_nic_degrade_restores_exact_capacity():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    tx, rx = cluster.topology.nic_segments("edison-0")
    base_tx, base_rx = tx.capacity_Bps, rx.capacity_Bps
    FaultInjector(cluster, FaultPlan(faults=(
        nic_degrade("edison-0", at=0.5, duration=1.0, factor=0.5),)))
    sim.run(until=1.0)
    assert tx.capacity_Bps == base_tx * 0.5
    assert rx.capacity_Bps == base_rx * 0.5
    sim.run()
    # Bit-identical restore, not base*0.5/0.5.
    assert tx.capacity_Bps == base_tx
    assert rx.capacity_Bps == base_rx


def test_disk_stall_sets_and_clears_slowdown():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    storage = cluster.servers["edison-0"].storage
    FaultInjector(cluster, FaultPlan(faults=(
        disk_stall("edison-0", at=0.5, duration=1.0, slowdown=8.0),
        disk_stall("edison-0", at=0.75, duration=0.5, slowdown=3.0))))
    sim.run(until=1.0)
    assert storage.slowdown == 8.0   # max of overlapping stalls
    sim.run()
    assert storage.slowdown == 1.0
    assert cluster.servers["edison-1"].storage.slowdown == 1.0


def test_disk_failure_is_permanent():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster, FaultPlan(faults=(
        disk_failure("edison-0", at=1.0),)))
    sim.run()
    assert injector.disk_failed("edison-0")
    assert injector.is_up("edison-0")        # node serves, disk is gone
    assert injector.records[0].end is None   # never repaired


def test_recurring_faults_are_seeded_and_reproducible():
    def run(seed):
        sim = Simulation()
        cluster = edison_cluster(sim, 2)
        injector = FaultInjector(cluster, FaultPlan(recurring=(
            RecurringFault(kind="crash", node="edison-0", mtbf_s=20,
                           mttr_s=2),)), seed=seed)
        sim.run(until=200.0)
        return [(r.start, r.end) for r in injector.records]

    first = run(5)
    assert first == run(5)
    assert first != run(6)
    assert len(first) > 2


# -- the no-fault bit-identity guarantee --------------------------------------

def test_empty_plan_keeps_web_run_bit_identical():
    kwargs = dict(duration=1.5, warmup=0.5)
    plain = WebServiceDeployment("edison", "1/8", seed=3).run_level(
        16, **kwargs)
    dep = WebServiceDeployment("edison", "1/8", seed=3)
    dep.attach_faults(FaultPlan.empty())
    chaos = dep.run_level(16, **kwargs)
    assert chaos == plain                    # bit-identical LevelResult


def test_empty_plan_keeps_job_run_bit_identical():
    plain = run_job("edison", 4, small_spec())
    runner = JobRunner("edison", 4)
    FaultInjector(runner.cluster, FaultPlan.empty())
    chaos = runner.run(small_spec())
    assert chaos.seconds == plain.seconds
    assert chaos.joules == plain.joules


# -- the headline experiments -------------------------------------------------

def test_killing_one_edison_costs_marginal_web_goodput():
    """The paper's pitch: losing 1 of 35 Edisons is a ~1/35 event.

    At saturation, killing one of the 24 web servers for the whole
    measurement window sheds its capacity share of goodput — about
    4 % — and nothing else: no cascade, no unserved survivors.
    """
    result = web_kill_experiment(concurrency=2048, duration=4.0,
                                 warmup=1.0, kill_at=0.0)
    assert result.web_servers == 24
    assert result.faulted.ok_calls < result.baseline.ok_calls
    assert abs(result.goodput_loss_fraction - 1 / 35) <= 0.02
    # The loss tracks the capacity-share prediction, not a collapse.
    assert abs(result.goodput_loss_fraction
               - result.expected_loss_fraction) <= 0.02
    assert result.availability.open_outages == 1


def test_wordcount_survives_losing_a_slave():
    """Killing a slave mid-job loses completed map output; the job
    still finishes through re-execution and HDFS replica fallback."""
    baseline = JobRunner("edison", 8, seed=7).run(small_spec())
    tracer = Tracer()
    runner = JobRunner("edison", 8, seed=7, trace=tracer)
    FaultInjector(runner.cluster, single_node_kill("edison-slave-0", 75.0))
    report = runner.run(small_spec())
    assert report.seconds > baseline.seconds     # recovery costs time
    state = runner._active[1]
    assert state.lost_map_count > 0              # completed maps were lost
    assert state.pending_recoveries == 0
    assert state.reduces_done == small_spec().reduce_tasks
    # Failure detection and recovery are visible in the trace.
    fault_events = [e for e in tracer.log if e.category == "fault"]
    assert any(e.name == "fault.crash" for e in fault_events)
    assert any(e.name == "node.blacklist" for e in tracer.log)


def test_job_fails_cleanly_when_all_replicas_are_gone():
    runner = JobRunner("edison", 4)
    FaultInjector(runner.cluster, FaultPlan(faults=tuple(
        disk_failure(f"edison-slave-{i}", at=20.0) for i in range(4))))
    with pytest.raises(JobFailed):
        runner.run(small_spec())


def test_reduce_failure_rate_is_validated():
    with pytest.raises(ValueError):
        replace(small_spec(), reduce_failure_rate=1.0)
    with pytest.raises(ValueError):
        replace(small_spec(), reduce_failure_rate=-0.1)


def test_injected_reduce_failures_are_retried():
    clean = run_job("edison", 4, small_spec())
    runner = JobRunner("edison", 4)
    faulty = runner.run(replace(small_spec(), reduce_failure_rate=0.4))
    assert faulty.seconds > clean.seconds    # retries cost time
    assert faulty.timeline.map_progress.values[-1] == pytest.approx(1.0)


def test_certain_reduce_failure_fails_the_job():
    runner = JobRunner("edison", 4)
    doomed = replace(small_spec(), reduce_failure_rate=0.999999)
    with pytest.raises(JobFailed, match="reduce"):
        runner.run(doomed)


# -- admin power states (the carbon plane's suspend lever) --------------------

def test_admin_double_power_off_is_idempotent():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster)
    events = []
    injector.add_listener(lambda edge, node, kind:
                          events.append((edge, node, kind)))
    injector.admin_power_off("edison-0")
    injector.admin_power_off("edison-0")         # second call is a no-op
    assert injector.admin_state("edison-0") == "off"
    assert events == [("down", "edison-0", "admin")]
    server = cluster.servers["edison-0"]
    assert injector.node_watts(server, server.utilization_window()) == 0.0
    injector.admin_begin_boot("edison-0")
    injector.admin_power_on("edison-0")
    assert injector.is_up("edison-0")
    # Admin round trips write no records and accrue no downtime.
    assert injector.records == []
    assert injector.downtime("edison-0") == 0.0


def test_admin_boot_requires_off_but_power_on_is_idempotent():
    sim = Simulation()
    cluster = edison_cluster(sim, 1)
    injector = FaultInjector(cluster)
    events = []
    injector.add_listener(lambda edge, node, kind:
                          events.append((edge, node, kind)))
    with pytest.raises(RuntimeError):
        injector.admin_begin_boot("edison-0")    # not off
    injector.admin_power_on("edison-0")          # already up: a no-op
    assert injector.is_up("edison-0")
    assert events == []                          # no spurious "up" edge


def test_crash_while_admin_off_counts_one_fault_record():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster, FaultPlan(
        faults=(node_crash("edison-0", at=1.0, repair_s=2.0),)))
    injector.admin_power_off("edison-0")
    sim.run(until=2.0)                           # crash lands while parked
    assert not injector.is_up("edison-0")
    assert len(injector.records) == 1            # the crash, and only it
    sim.run(until=4.0)                           # fault repaired...
    assert len(injector.records) == 1
    assert injector.records[0].end == pytest.approx(3.0)
    assert not injector.is_up("edison-0")        # ...but still parked
    injector.admin_begin_boot("edison-0")
    injector.admin_power_on("edison-0")
    assert injector.is_up("edison-0")
    # Downtime belongs to the fault alone, not the admin park.
    assert injector.downtime("edison-0") == pytest.approx(2.0)
