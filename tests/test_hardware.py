"""Unit tests for the hardware models and calibrated profiles."""

import pytest

from repro.core import paperdata as paper
from repro.hardware import (
    Cpu, CpuSpec, DELL_R620, EDISON, EDISON_INTEGRATED_NIC, Memory,
    MemorySpec, NicSpec, PowerSpec, StorageSpec, make_server,
)
from repro.sim import Simulation


# -- CpuSpec / Cpu ----------------------------------------------------------

def test_cpuspec_vcores_and_dmips():
    spec = CpuSpec(cores=6, threads_per_core=2, dmips_per_thread=1000,
                   smt_efficiency=0.9)
    assert spec.vcores == 12
    assert spec.vcore_dmips == pytest.approx(900)
    assert spec.machine_dmips == pytest.approx(10800)


def test_cpuspec_no_smt_keeps_full_thread_speed():
    spec = CpuSpec(cores=2, threads_per_core=1, dmips_per_thread=632.3,
                   smt_efficiency=0.5)  # ignored without SMT
    assert spec.vcore_dmips == pytest.approx(632.3)


def test_cpuspec_validation():
    with pytest.raises(ValueError):
        CpuSpec(cores=0, threads_per_core=1, dmips_per_thread=100)
    with pytest.raises(ValueError):
        CpuSpec(cores=1, threads_per_core=1, dmips_per_thread=-5)
    with pytest.raises(ValueError):
        CpuSpec(cores=1, threads_per_core=1, dmips_per_thread=100,
                smt_efficiency=1.5)


def test_cpu_service_time():
    sim = Simulation()
    cpu = Cpu(sim, CpuSpec(cores=1, threads_per_core=1, dmips_per_thread=500))
    assert cpu.service_time(1000) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        cpu.service_time(-1)


def test_cpu_execute_queues_beyond_vcores():
    sim = Simulation()
    cpu = Cpu(sim, CpuSpec(cores=2, threads_per_core=1, dmips_per_thread=100))
    done = []

    def task(tag):
        yield from cpu.execute(100)  # 1 second each
        done.append((tag, sim.now))

    for tag in range(4):
        sim.process(task(tag))
    sim.run()
    # Two run immediately, two queue behind them.
    assert done == [(0, 1), (1, 1), (2, 2), (3, 2)]


def test_cpu_utilization_probe():
    sim = Simulation()
    cpu = Cpu(sim, CpuSpec(cores=2, threads_per_core=1, dmips_per_thread=100))
    sim.process(cpu.execute(100))
    sim.run(until=0.5)
    assert cpu.utilization() == pytest.approx(0.5)


# -- MemorySpec / Memory ------------------------------------------------------

def test_memory_bandwidth_saturates_with_block_size():
    spec = MemorySpec(capacity_bytes=1e9, peak_bandwidth_bps=2.2e9,
                      saturation_threads=2)
    small = spec.bandwidth(4096, threads=2)
    large = spec.bandwidth(1 << 20, threads=2)
    assert small < large
    assert large >= 0.95 * 2.2e9  # near peak at 1 MiB blocks


def test_memory_bandwidth_saturates_with_threads():
    spec = MemorySpec(capacity_bytes=1e9, peak_bandwidth_bps=36e9,
                      saturation_threads=12)
    assert spec.bandwidth(1 << 20, 1) < spec.bandwidth(1 << 20, 12)
    assert spec.bandwidth(1 << 20, 12) == pytest.approx(
        spec.bandwidth(1 << 20, 16))


def test_memory_reserve_free_cycle():
    sim = Simulation()
    mem = Memory(sim, MemorySpec(capacity_bytes=100, peak_bandwidth_bps=1e9,
                                 saturation_threads=1))
    mem.reserve(60)
    sim.run()
    assert mem.utilization() == pytest.approx(0.6)
    mem.free(60)
    sim.run()
    assert mem.occupied_bytes == 0


def test_memory_transfer_time():
    sim = Simulation()
    mem = Memory(sim, MemorySpec(capacity_bytes=1e9, peak_bandwidth_bps=1e9,
                                 saturation_threads=1, half_rate_block=0.001))
    assert mem.transfer_time(5e8) == pytest.approx(0.5, rel=1e-3)


# -- StorageSpec ------------------------------------------------------------

def test_storage_rates_and_latency_lookup():
    spec = StorageSpec(write_bps=10, buffered_write_bps=20, read_bps=30,
                       buffered_read_bps=40, write_latency_s=0.1,
                       read_latency_s=0.2)
    assert spec.rate("write", buffered=False) == 10
    assert spec.rate("write", buffered=True) == 20
    assert spec.rate("read", buffered=False) == 30
    assert spec.rate("read", buffered=True) == 40
    assert spec.latency("write") == 0.1
    assert spec.latency("read") == 0.2
    with pytest.raises(ValueError):
        spec.rate("seek", buffered=False)


def test_storage_io_serialises_on_channel():
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    disk = server.storage
    done = []

    def write(tag):
        yield from disk.write(4.5e6)  # 1 s transfer + 18 ms latency
        done.append((tag, sim.now))

    sim.process(write("a"))
    sim.process(write("b"))
    sim.run()
    assert done[0][1] == pytest.approx(1.018)
    assert done[1][1] == pytest.approx(2.036)
    assert disk.bytes_written == pytest.approx(9e6)


# -- PowerSpec ---------------------------------------------------------------

def test_power_endpoints_match_table3():
    assert EDISON.power.min_w == pytest.approx(paper.T3_EDISON_IDLE_W)
    assert EDISON.power.max_w == pytest.approx(paper.T3_EDISON_BUSY_W)
    assert DELL_R620.power.min_w == pytest.approx(paper.T3_DELL_IDLE_W)
    assert DELL_R620.power.max_w == pytest.approx(paper.T3_DELL_BUSY_W)


def test_cluster35_power_matches_table3():
    idle = 35 * EDISON.power.min_w
    busy = 35 * EDISON.power.max_w
    assert idle == pytest.approx(paper.T3_EDISON_CLUSTER35_IDLE_W)
    assert busy == pytest.approx(paper.T3_EDISON_CLUSTER35_BUSY_W)


def test_power_interpolates_between_endpoints():
    spec = PowerSpec(idle_w=50, busy_w=100,
                     weights={"cpu": 1.0})
    assert spec.power({"cpu": 0.0}) == 50
    assert spec.power({"cpu": 1.0}) == 100
    assert spec.power({"cpu": 0.5}) == 75


def test_power_clamps_out_of_range_utilization():
    spec = PowerSpec(idle_w=50, busy_w=100, weights={"cpu": 1.0})
    assert spec.power({"cpu": 2.0}) == 100
    assert spec.power({"cpu": -1.0}) == 50


def test_power_weights_must_sum_to_one():
    with pytest.raises(ValueError):
        PowerSpec(idle_w=1, busy_w=2, weights={"cpu": 0.5})


def test_power_unknown_component_key_raises():
    # Regression: a typo'd component key ("network" for "net") used to
    # silently count as idle, billing idle watts for a busy component
    # and skewing every work-per-joule figure downstream.
    spec = PowerSpec(idle_w=50, busy_w=100)
    with pytest.raises(ValueError, match="network"):
        spec.effective_utilization({"cpu": 0.5, "network": 0.9})
    with pytest.raises(ValueError):
        spec.power({"CPU": 1.0})
    # Absent components still legitimately count as idle.
    assert spec.effective_utilization({}) == 0.0


def test_power_without_adapter_ablation():
    bare = EDISON.power.without_adapter()
    assert bare.min_w == pytest.approx(paper.T3_EDISON_BARE_IDLE_W)
    assert bare.adapter_w == 0
    integrated = EDISON_INTEGRATED_NIC.power
    assert integrated.adapter_w == pytest.approx(paper.INTEGRATED_NIC_W)


# -- Profiles / Server --------------------------------------------------------

def test_dell_machine_speedup_near_100x():
    ratio = DELL_R620.cpu.machine_dmips / EDISON.cpu.machine_dmips
    low, high = paper.S41_PER_MACHINE_SPEEDUP
    assert low <= ratio <= high


def test_dell_per_thread_speedup_matches_dhrystone():
    ratio = DELL_R620.cpu.dmips_per_thread / EDISON.cpu.dmips_per_thread
    assert ratio == pytest.approx(
        paper.S41_DELL_DMIPS / paper.S41_EDISON_DMIPS)


def test_nic_specs_match_table2():
    assert EDISON.nic.bandwidth_bps == paper.EDISON_NIC_BPS
    assert DELL_R620.nic.bandwidth_bps == paper.DELL_NIC_BPS
    assert EDISON.nic.usb_adapter
    assert not DELL_R620.nic.usb_adapter


def test_nicspec_validation():
    with pytest.raises(ValueError):
        NicSpec(bandwidth_bps=0)


def test_server_utilization_window_idle():
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    sim.run(until=10)
    window = server.utilization_window()
    assert window["cpu"] == 0
    assert window["disk"] == 0
    assert window["net"] == 0


def test_server_utilization_window_cpu_busy():
    sim = Simulation()
    server = make_server(sim, DELL_R620, "d0")

    def hog():
        # Hold all 12 vcores for 10 s.
        for _ in range(12):
            sim.process(server.cpu.execute(
                10 * server.spec.cpu.vcore_dmips))
        yield sim.timeout(0)

    sim.process(hog())
    sim.run(until=10)
    window = server.utilization_window()
    assert window["cpu"] == pytest.approx(1.0, rel=1e-6)
    watts = server.spec.power.power(window)
    assert watts > server.spec.power.min_w


def test_server_power_now_idle_equals_min():
    sim = Simulation()
    server = make_server(sim, EDISON, "e0")
    sim.run(until=1)
    assert server.power_now() == pytest.approx(EDISON.power.min_w)
