"""Integration tests: running MapReduce jobs end to end.

Full-scale paper comparisons live in the benchmark harness; these tests
use small clusters and scaled-down datasets to stay fast while checking
the mechanisms (phases, combiner, locality, energy accounting, tuning).
"""

from dataclasses import replace

import pytest

from repro.core import paperdata as paper
from repro.mapreduce import JOB_FACTORIES, JobRunner, JobSpec, run_job
from repro.mapreduce.costs import JobCosts
from repro.workloads import wordcount_dataset

SMALL = wordcount_dataset(total_bytes=64_000_000, files=16)
CHEAP = JobCosts(map_mi_per_mb=500, sort_mi_per_mb=200, reduce_mi_per_mb=400,
                 java_factor={"edison": 1.0, "dell": 2.0})


def small_spec(**overrides) -> JobSpec:
    base = dict(name="small", costs=CHEAP, map_tasks=16, reduce_tasks=4,
                map_mem_mb=150, reduce_mem_mb=300, dataset=SMALL,
                combiner=False, output_ratio=0.05)
    base.update(overrides)
    return JobSpec(**base)


def test_job_completes_and_reports():
    report = run_job("edison", 4, small_spec())
    assert report.seconds > paper.S52_EDISON_BLOCK_MB  # nontrivial runtime
    assert report.joules > 0
    assert report.platform == "edison"
    assert report.slaves == 4
    assert report.mean_watts == pytest.approx(report.joules / report.seconds)


def test_job_is_deterministic_per_seed():
    a = run_job("edison", 4, small_spec(), seed=5)
    b = run_job("edison", 4, small_spec(), seed=5)
    assert a.seconds == pytest.approx(b.seconds)
    assert a.joules == pytest.approx(b.joules)


def test_combiner_shrinks_shuffle_and_time():
    plain = small_spec()
    combined = small_spec(combiner=True)
    assert combined.shuffle_bytes < 0.1 * plain.shuffle_bytes
    t_plain = run_job("edison", 4, plain).seconds
    t_combined = run_job("edison", 4, combined).seconds
    assert t_combined < t_plain


def test_more_slaves_run_faster():
    t4 = run_job("edison", 4, small_spec()).seconds
    t8 = run_job("edison", 8, small_spec()).seconds
    assert t8 < t4


def test_locality_fraction_is_high():
    report = run_job("edison", 8, small_spec())
    # The paper reports ~95 % data-local maps.
    assert report.locality_fraction >= 0.85


def test_timeline_progress_monotone_and_complete():
    report = run_job("edison", 4, small_spec())
    maps = report.timeline.map_progress.values
    assert maps == sorted(maps)
    assert maps[-1] == pytest.approx(1.0)
    reduces = report.timeline.reduce_progress.values
    assert reduces == sorted(reduces)


def test_alloc_lead_keeps_cluster_idle_initially():
    report = run_job("edison", 4, small_spec())
    # Before the allocation lead ends, CPU utilisation must be ~zero
    # (Figures 12/15: CPU rises at ~45 s on Edison).
    early_cpu = report.timeline.cpu.at(10.0)
    assert early_cpu < 0.05
    assert report.timeline.power_w.at(10.0) < 1.05 * 4 * 1.40


def test_power_rises_during_map_phase():
    report = run_job("edison", 4, small_spec())
    idle = 4 * 1.40
    assert report.timeline.power_w.maximum() > idle * 1.1


def test_watchdog_detects_stuck_jobs():
    runner = JobRunner("edison", 2)
    spec = small_spec(map_tasks=4, reduce_tasks=2)
    with pytest.raises(RuntimeError, match="watchdog"):
        runner.run(spec, deadline_s=5.0)   # job needs far longer than 5 s


def test_spec_validation():
    with pytest.raises(ValueError):
        small_spec(map_tasks=0)
    with pytest.raises(ValueError):
        small_spec(reduce_tasks=-1)
    with pytest.raises(ValueError):
        small_spec(map_mem_mb=0)
    with pytest.raises(ValueError):
        small_spec(output_ratio=-0.1)


def test_map_only_job_supported():
    report = run_job("edison", 4, small_spec(reduce_tasks=0, combiner=False))
    assert report.seconds > 0


# -- Job factories -----------------------------------------------------------

@pytest.mark.parametrize("job", ["wordcount", "wordcount2", "logcount",
                                 "logcount2", "pi", "terasort", "teragen",
                                 "teravalidate"])
@pytest.mark.parametrize("platform,slaves", [("edison", 35), ("dell", 2)])
def test_factories_build_valid_specs(job, platform, slaves):
    spec, config = JOB_FACTORIES[job](platform, slaves)
    assert spec.map_tasks >= 1
    assert config.platform == platform
    assert spec.costs.factor(platform) > 0


def test_wordcount_factory_matches_paper_tuning():
    spec, config = JOB_FACTORIES["wordcount"]("edison", 35)
    assert spec.map_tasks == 200
    assert spec.reduce_tasks == 70
    assert spec.map_mem_mb == 150
    assert config.block_mb == 16
    spec, config = JOB_FACTORIES["wordcount"]("dell", 2)
    assert spec.map_tasks == 200
    assert spec.reduce_tasks == 24
    assert spec.map_mem_mb == 500
    assert config.block_mb == 64


def test_wordcount2_factory_one_container_per_vcore():
    spec, config = JOB_FACTORIES["wordcount2"]("edison", 35)
    assert spec.map_tasks == 70
    assert spec.combiner
    spec, config = JOB_FACTORIES["wordcount2"]("dell", 2)
    assert spec.map_tasks == 24
    # 1 GB over 24 maps -> ~42 MB splits: within the 64 MB block.
    assert config.block_mb == 64


def test_wordcount2_scaling_raises_block_size():
    """Section 5.3: smaller clusters get bigger blocks to keep 1/vcore."""
    spec, config = JOB_FACTORIES["wordcount2"]("edison", 17)
    assert spec.map_tasks == 34
    assert config.block_mb >= 30        # ~1 GB / 34 maps
    spec, config = JOB_FACTORIES["wordcount2"]("edison", 4)
    assert spec.map_tasks == 8
    assert config.block_mb >= 125


def test_pi_factory_matches_paper_maps():
    spec, _ = JOB_FACTORIES["pi"]("edison", 35)
    assert spec.map_tasks == paper.PI_MAPS["edison"]
    assert spec.reduce_tasks == 1
    spec, _ = JOB_FACTORIES["pi"]("dell", 2)
    assert spec.map_tasks == paper.PI_MAPS["dell"]


def test_terasort_factory_matches_paper():
    spec, config = JOB_FACTORIES["terasort"]("edison", 35)
    assert spec.map_tasks == paper.TERASORT_MAPS
    assert spec.reduce_tasks == paper.TERASORT_REDUCES["edison"]
    assert config.block_mb == paper.TERASORT_BLOCK_MB
    assert spec.output_ratio == 1.0


def test_logcount_factory_500_containers():
    spec, _ = JOB_FACTORIES["logcount"]("edison", 35)
    assert spec.map_tasks == 500
    assert spec.combiner


def test_unknown_platform_rejected_by_runner():
    with pytest.raises(ValueError):
        JobRunner("sparc", 4)
