"""Unit tests for the MapReduce substrate: config, HDFS, YARN, costs."""

import random

import pytest

from repro.cluster import hadoop_cluster
from repro.core import paperdata as paper
from repro.mapreduce import HadoopConfig, Hdfs, YarnScheduler, default_config
from repro.mapreduce.costs import DENSITY_BETA, JobCosts, effective_factor
from repro.sim import Simulation
from repro.workloads import wordcount_dataset


# -- HadoopConfig --------------------------------------------------------------

def test_default_config_edison_matches_section52():
    config = default_config("edison")
    assert config.block_mb == 16
    assert config.replication == 2
    assert config.node_task_mem_mb == 600
    assert config.node_vcores == 2


def test_default_config_dell_matches_section52():
    config = default_config("dell")
    assert config.block_mb == 64
    assert config.replication == 1
    assert config.node_task_mem_mb == 12 * 1024
    assert config.node_vcores == 12


def test_default_config_unknown_platform():
    with pytest.raises(ValueError):
        default_config("sparc")


def test_config_with_block_mb():
    config = default_config("edison").with_block_mb(32)
    assert config.block_mb == 32
    assert config.replication == 2


def test_config_validation():
    with pytest.raises(ValueError):
        HadoopConfig("edison", block_mb=0, replication=1,
                     node_task_mem_mb=100, node_vcores=1, am_mem_mb=10)
    with pytest.raises(ValueError):
        HadoopConfig("edison", block_mb=1, replication=1,
                     node_task_mem_mb=100, node_vcores=1, am_mem_mb=10,
                     slowstart=0)


# -- Hdfs -----------------------------------------------------------------------

def make_hdfs(platform="edison", slaves=4, block_mb=16, replication=2):
    sim = Simulation()
    cluster = hadoop_cluster(sim, platform, slaves)
    hdfs = Hdfs(sim, cluster.topology, cluster.metered_servers,
                block_mb * 1000 * 1000, replication, random.Random(3))
    return sim, cluster, hdfs


def test_hdfs_blocks_split_at_block_size():
    sim, cluster, hdfs = make_hdfs()
    record = hdfs.stage_file("f", 40_000_000)
    assert len(record.blocks) == 3          # 16 + 16 + 8 MB
    assert sum(b.size_bytes for b in record.blocks) == 40_000_000


def test_hdfs_replicas_distinct_nodes():
    sim, cluster, hdfs = make_hdfs(replication=2)
    record = hdfs.stage_file("f", 64_000_000)
    for block in record.blocks:
        assert len(block.replicas) == 2
        assert len(set(block.replicas)) == 2


def test_hdfs_validation():
    sim, cluster, hdfs = make_hdfs()
    with pytest.raises(ValueError):
        hdfs.stage_file("f", 0)
    hdfs.stage_file("f", 100)
    with pytest.raises(ValueError):
        hdfs.stage_file("f", 100)       # duplicate name
    with pytest.raises(ValueError):
        Hdfs(sim, cluster.topology, cluster.metered_servers, 1000, 9,
             random.Random(1))          # replication > nodes


def test_hdfs_stage_dataset():
    sim, cluster, hdfs = make_hdfs()
    files = hdfs.stage_dataset(wordcount_dataset(total_bytes=80_000_000,
                                                 files=16))
    assert len(files) == 16


def test_hdfs_local_read_uses_own_disk():
    sim, cluster, hdfs = make_hdfs()
    record = hdfs.stage_file("f", 10_000_000)
    block = record.blocks[0]
    node = block.replicas[0]

    def reader():
        yield from hdfs.read_block(node, block)

    sim.run(until=sim.process(reader()))
    # 10 MB at 19.5 MB/s direct read ~= 0.51 s (plus access latency).
    assert sim.now == pytest.approx(10e6 / 19.5e6, rel=0.05)
    assert cluster.servers[node].storage.bytes_read == pytest.approx(10e6)


def test_hdfs_remote_read_crosses_network():
    sim, cluster, hdfs = make_hdfs()
    record = hdfs.stage_file("f", 10_000_000)
    block = record.blocks[0]
    outsider = [n for n in cluster.servers
                if n.startswith("edison") and n not in block.replicas][0]

    def reader():
        yield from hdfs.read_block(outsider, block)

    sim.run(until=sim.process(reader()))
    # Remote: bounded by the 100 Mb/s NIC line rate (12.5 MB/s), which
    # is slower than overlapping the source's disk read.
    assert sim.now == pytest.approx(10e6 / 12.5e6, rel=0.05)


def test_hdfs_write_replicates():
    sim, cluster, hdfs = make_hdfs(replication=2)
    node = cluster.metered_servers[0].name

    def writer():
        yield from hdfs.write(node, 5_000_000)

    sim.run(until=sim.process(writer()))
    written = sum(s.storage.bytes_written for s in cluster.metered_servers)
    assert written == pytest.approx(10_000_000)   # 2 replicas


def test_hdfs_zero_byte_write_is_noop():
    sim, cluster, hdfs = make_hdfs()
    node = cluster.metered_servers[0].name

    def writer():
        yield from hdfs.write(node, 0)
        return "done"

    result = sim.run(until=sim.process(writer()))
    assert result == "done"


# -- YarnScheduler ---------------------------------------------------------------

def make_yarn(platform="edison", slaves=3):
    sim = Simulation()
    cluster = hadoop_cluster(sim, platform, slaves)
    yarn = YarnScheduler(sim, cluster.metered_servers,
                         default_config(platform), random.Random(5))
    return sim, cluster, yarn


def test_yarn_grants_up_to_node_memory():
    sim, cluster, yarn = make_yarn(slaves=1)
    grants = []

    def task():
        grant = yield from yarn.allocate(150)
        grants.append(grant)
        yield sim.timeout(100)
        yarn.release(grant)

    for _ in range(6):
        sim.process(task())
    sim.run(until=50)
    # 600 MB node memory -> 4 concurrent 150 MB containers.
    assert len(grants) == 4
    sim.run(until=200)
    assert len(grants) == 6


def test_yarn_prefers_local_nodes():
    sim, cluster, yarn = make_yarn(slaves=3)
    preferred = cluster.metered_servers[2].name
    grants = []

    def task():
        grant = yield from yarn.allocate(150, preferred=[preferred])
        grants.append(grant)

    sim.process(task())
    sim.run()
    assert grants[0].node == preferred
    assert grants[0].local
    assert yarn.locality_fraction == 1.0


def test_yarn_falls_back_after_locality_wait():
    sim, cluster, yarn = make_yarn(slaves=2)
    busy = cluster.metered_servers[0].name
    yarn.nodes[busy].reserve(600)        # preferred node is full
    grants = []

    def task():
        grant = yield from yarn.allocate(150, preferred=[busy])
        grants.append((grant.node, sim.now))

    sim.process(task())
    sim.run()
    node, when = grants[0]
    assert node != busy
    assert when > yarn.LOCALITY_WAIT_HEARTBEATS * 0.3   # waited first


def test_yarn_release_restores_memory():
    sim, cluster, yarn = make_yarn(slaves=1)
    nm = yarn.nodes[cluster.metered_servers[0].name]

    def task():
        grant = yield from yarn.allocate(300)
        assert nm.free_mem_mb == 300
        yarn.release(grant)

    sim.run(until=sim.process(task()))
    assert nm.free_mem_mb == 600


def test_yarn_validation():
    sim, cluster, yarn = make_yarn()
    with pytest.raises(ValueError):
        next(yarn.allocate(0))
    with pytest.raises(ValueError):
        YarnScheduler(sim, [], default_config("edison"), random.Random(1))


def test_nodemanager_overreserve_rejected():
    sim, cluster, yarn = make_yarn(slaves=1)
    nm = yarn.nodes[cluster.metered_servers[0].name]
    with pytest.raises(ValueError):
        nm.reserve(601)


# -- Costs ----------------------------------------------------------------------

def test_effective_factor_density_penalty():
    costs = JobCosts(1, 1, 1, java_factor={"edison": 1.0, "dell": 2.0})
    assert effective_factor(costs, "edison", 2.0) == 1.0  # beta 0
    dell_beta = DENSITY_BETA["dell"]
    assert effective_factor(costs, "dell", 2.0) == pytest.approx(
        2.0 * (1 + dell_beta))
    assert effective_factor(costs, "dell", 1.0) == 2.0
    assert effective_factor(costs, "dell", 0.5) == 2.0  # no bonus below 1


def test_jobcosts_unknown_platform():
    costs = JobCosts(1, 1, 1)
    with pytest.raises(ValueError):
        costs.factor("sparc")


# -- Straggler cost anchor -----------------------------------------------------

def test_straggler_anchor_uses_pool_median_not_slave_zero():
    """Regression: _estimate_map_s anchored to slave 0's DMIPS, so on a
    heterogeneous pool whichever platform sorted first set the straggler
    baseline for everyone — a Dell-anchored estimate flags every Edison
    attempt as LATE.  The anchor is now the pool-median vcore rate."""
    from repro.mapreduce import JOB_FACTORIES, JobRunner

    spec, config = JOB_FACTORIES["wordcount2"]("edison", 4)
    runner = JobRunner("edison", 4, config=config, seed=3)
    homogeneous = runner._estimate_map_s(spec, 1.0)

    donor = JobRunner("dell", 2, seed=3)
    dell = donor.slave_servers[0]
    edisons = list(runner.slave_servers)

    # One Dell among three Edisons: the median is still the Edison
    # rate, so the estimate matches the homogeneous pool exactly...
    runner.slave_servers = [dell] + edisons[:3]
    assert runner._estimate_map_s(spec, 1.0) == homogeneous
    # ...and does not depend on which platform happens to sort first.
    runner.slave_servers = edisons[:3] + [dell]
    assert runner._estimate_map_s(spec, 1.0) == homogeneous

    # The old slave-0 anchor would have priced every map at Dell speed.
    runner.slave_servers = [dell] * 4
    assert runner._estimate_map_s(spec, 1.0) < homogeneous
