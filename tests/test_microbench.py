"""Tests for the Section 4 micro-benchmarks against the paper's numbers."""

import pytest

from repro.cluster import Cluster
from repro.core import paperdata as paper
from repro.hardware import DELL_R620, EDISON, make_server
from repro.microbench import (
    run_dd, run_dhrystone, run_ioping, run_iperf, run_ping,
    run_sysbench_cpu, run_sysbench_memory,
)
from repro.sim import Simulation


def fresh_server(spec, name="s0"):
    sim = Simulation()
    return sim, make_server(sim, spec, name)


# -- Dhrystone (Section 4.1) --------------------------------------------------

def test_dhrystone_edison_matches_paper():
    sim, server = fresh_server(EDISON)
    result = run_dhrystone(sim, server)
    assert result.dmips == pytest.approx(paper.S41_EDISON_DMIPS, rel=1e-3)


def test_dhrystone_dell_matches_paper():
    sim, server = fresh_server(DELL_R620)
    result = run_dhrystone(sim, server)
    assert result.dmips == pytest.approx(paper.S41_DELL_DMIPS, rel=1e-3)


def test_dhrystone_rejects_bad_runs():
    sim, server = fresh_server(EDISON)
    with pytest.raises(ValueError):
        run_dhrystone(sim, server, runs=0)


# -- Sysbench CPU (Figures 2 & 3) ----------------------------------------------

def test_sysbench_cpu_single_thread_ratio_in_paper_band():
    sim_e, edison = fresh_server(EDISON)
    sim_d, dell = fresh_server(DELL_R620)
    t_e = run_sysbench_cpu(sim_e, edison, threads=1).total_time_s
    t_d = run_sysbench_cpu(sim_d, dell, threads=1).total_time_s
    low, high = paper.S41_PER_CORE_SPEEDUP
    assert low <= t_e / t_d <= high + 0.5  # Dhrystone ratio is 18.0


def test_sysbench_cpu_edison_flat_beyond_two_threads():
    times = {}
    for threads in (1, 2, 4, 8):
        sim, server = fresh_server(EDISON)
        times[threads] = run_sysbench_cpu(sim, server, threads).total_time_s
    assert times[2] == pytest.approx(times[1] / 2, rel=0.01)
    assert times[4] == pytest.approx(times[2], rel=0.05)
    assert times[8] == pytest.approx(times[2], rel=0.05)


def test_sysbench_cpu_dell_scales_to_eight_threads():
    times = {}
    for threads in (1, 2, 4, 8):
        sim, server = fresh_server(DELL_R620)
        times[threads] = run_sysbench_cpu(sim, server, threads).total_time_s
    assert times[8] < times[4] < times[2] < times[1]
    assert times[1] / times[8] > 6  # near-linear to 8 threads


def test_sysbench_cpu_response_time_grows_with_oversubscription():
    sim, server = fresh_server(EDISON)
    r8 = run_sysbench_cpu(sim, server, threads=8)
    sim2, server2 = fresh_server(EDISON)
    r1 = run_sysbench_cpu(sim2, server2, threads=1)
    # 8 threads on 2 cores: per-event response ~4x the 1-thread case.
    assert r8.avg_response_time_s > 3 * r1.avg_response_time_s


def test_sysbench_cpu_validation():
    sim, server = fresh_server(EDISON)
    with pytest.raises(ValueError):
        run_sysbench_cpu(sim, server, threads=0)
    with pytest.raises(ValueError):
        run_sysbench_cpu(sim, server, threads=1, prime_limit=1)


# -- Sysbench memory (Section 4.2) ----------------------------------------------

def test_memory_peak_rates_match_paper():
    sim, edison = fresh_server(EDISON)
    r = run_sysbench_memory(sim, edison, block_bytes=1 << 20, threads=2)
    assert r.rate_bps == pytest.approx(paper.S42_EDISON_MEM_BW, rel=0.05)
    sim, dell = fresh_server(DELL_R620)
    r = run_sysbench_memory(sim, dell, block_bytes=1 << 20, threads=12)
    assert r.rate_bps == pytest.approx(paper.S42_DELL_MEM_BW, rel=0.05)


def test_memory_rate_saturates_at_platform_thread_counts():
    sim, edison = fresh_server(EDISON)
    r2 = run_sysbench_memory(sim, edison, 1 << 20, threads=2)
    sim, edison = fresh_server(EDISON)
    r16 = run_sysbench_memory(sim, edison, 1 << 20, threads=16)
    assert r16.rate_bps == pytest.approx(r2.rate_bps)


# -- dd / ioping (Table 5) -------------------------------------------------------

@pytest.mark.parametrize("spec,table", [
    (EDISON, paper.T5_EDISON), (DELL_R620, paper.T5_DELL),
])
def test_dd_throughput_matches_table5(spec, table):
    for op, buffered, key in [
        ("write", False, "write_bps"), ("write", True, "buffered_write_bps"),
        ("read", False, "read_bps"), ("read", True, "buffered_read_bps"),
    ]:
        sim, server = fresh_server(spec)
        result = run_dd(sim, server, op, nbytes=50e6, buffered=buffered)
        # Direct I/O pays per-block latency, so rate is slightly below
        # the sustained figure; buffered matches it closely.
        assert result.rate_bps <= table[key] * 1.001
        assert result.rate_bps >= table[key] * 0.85


@pytest.mark.parametrize("spec,table", [
    (EDISON, paper.T5_EDISON), (DELL_R620, paper.T5_DELL),
])
def test_ioping_latency_matches_table5(spec, table):
    sim, server = fresh_server(spec)
    read = run_ioping(sim, server, "read")
    sim, server = fresh_server(spec)
    write = run_ioping(sim, server, "write")
    # The measured value is the access latency plus the 4 KiB transfer,
    # so it sits just above the Table 5 access-latency figure.
    assert table["read_latency_s"] <= read.mean_latency_s \
        <= table["read_latency_s"] * 1.07
    assert table["write_latency_s"] <= write.mean_latency_s \
        <= table["write_latency_s"] * 1.07


# -- iperf / ping (Section 4.4) ---------------------------------------------------

def two_servers(spec_a, spec_b):
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(spec_a, "a")
    cluster.add(spec_b, "b")
    return sim, cluster.topology


@pytest.mark.parametrize("spec_a,spec_b,key", [
    (DELL_R620, DELL_R620, ("dell", "dell")),
    (DELL_R620, EDISON, ("dell", "edison")),
    (EDISON, EDISON, ("edison", "edison")),
])
def test_iperf_tcp_matches_section44(spec_a, spec_b, key):
    sim, topo = two_servers(spec_a, spec_b)
    result = run_iperf(sim, topo, "a", "b", nbytes=100e6, protocol="tcp")
    assert result.goodput_bps == pytest.approx(paper.S44_TCP_BPS[key], rel=0.01)


@pytest.mark.parametrize("spec_a,spec_b,key", [
    (DELL_R620, DELL_R620, ("dell", "dell")),
    (EDISON, EDISON, ("edison", "edison")),
])
def test_iperf_udp_matches_section44(spec_a, spec_b, key):
    sim, topo = two_servers(spec_a, spec_b)
    result = run_iperf(sim, topo, "a", "b", nbytes=100e6, protocol="udp")
    assert result.goodput_bps == pytest.approx(paper.S44_UDP_BPS[key], rel=0.01)


def test_iperf_validation():
    sim, topo = two_servers(EDISON, EDISON)
    with pytest.raises(ValueError):
        run_iperf(sim, topo, "a", "b", protocol="sctp")
    with pytest.raises(ValueError):
        run_iperf(sim, topo, "a", "b", nbytes=0)


@pytest.mark.parametrize("spec_a,spec_b,key", [
    (DELL_R620, DELL_R620, ("dell", "dell")),
    (DELL_R620, EDISON, ("dell", "edison")),
    (EDISON, EDISON, ("edison", "edison")),
])
def test_ping_matches_section44(spec_a, spec_b, key):
    sim, topo = two_servers(spec_a, spec_b)
    result = run_ping(sim, topo, "a", "b")
    assert result.rtt_s == pytest.approx(paper.S44_RTT_S[key])
