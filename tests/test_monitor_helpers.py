"""Tests for the TimeSeries query helpers: rate, windows, resampling."""

import pytest

from repro.sim import TimeSeries


def make_series(pairs):
    series = TimeSeries("s")
    for t, v in pairs:
        series.record(t, v)
    return series


# -- edge cases ---------------------------------------------------------------

def test_empty_series_raises_everywhere():
    empty = TimeSeries("empty")
    with pytest.raises(ValueError):
        empty.rate()
    with pytest.raises(ValueError):
        empty.avg_over_time()
    with pytest.raises(ValueError):
        empty.max_over_time()
    with pytest.raises(ValueError):
        empty.resample(1.0)


def test_single_sample_rate_is_zero():
    series = make_series([(1.0, 42.0)])
    assert series.rate() == 0.0
    assert series.rate(window_s=10.0) == 0.0


def test_single_sample_avg_is_the_sample():
    series = make_series([(1.0, 42.0)])
    assert series.avg_over_time() == 42.0
    assert series.max_over_time() == 42.0


def test_backwards_time_rejected_on_record():
    series = make_series([(2.0, 1.0)])
    with pytest.raises(ValueError):
        series.record(1.0, 2.0)


def test_equal_timestamps_allowed_but_rate_zero():
    series = make_series([(1.0, 1.0), (1.0, 5.0)])
    assert series.rate() == 0.0


def test_nonpositive_window_rejected():
    series = make_series([(0.0, 1.0), (1.0, 2.0)])
    with pytest.raises(ValueError):
        series.rate(window_s=0.0)
    with pytest.raises(ValueError):
        series.avg_over_time(window_s=-1.0)


# -- rate ---------------------------------------------------------------------

def test_rate_of_steady_counter():
    series = make_series([(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)])
    assert series.rate() == pytest.approx(10.0)


def test_rate_is_reset_aware():
    # Counter restarts at zero mid-way (a process restarted): the
    # post-reset samples still count as increase, PromQL-style.
    series = make_series([(0.0, 0.0), (1.0, 10.0), (2.0, 3.0), (3.0, 6.0)])
    # increase = 10 + 3 + 3 = 16 over 3 seconds.
    assert series.rate() == pytest.approx(16.0 / 3.0)


def test_rate_windowed_ignores_old_samples():
    series = make_series([(0.0, 0.0), (10.0, 100.0), (11.0, 110.0),
                          (12.0, 120.0)])
    assert series.rate(window_s=2.5) == pytest.approx(10.0)


def test_rate_with_explicit_now_anchor():
    series = make_series([(0.0, 0.0), (1.0, 10.0)])
    # Window anchored far past the data: nothing inside -> 0.0.
    assert series.rate(window_s=1.0, now=100.0) == 0.0


# -- avg/max over time --------------------------------------------------------

def test_avg_over_time_window():
    series = make_series([(0.0, 0.0), (1.0, 2.0), (2.0, 4.0)])
    assert series.avg_over_time() == pytest.approx(2.0)
    assert series.avg_over_time(window_s=1.5) == pytest.approx(3.0)


def test_avg_over_time_stale_series_is_none():
    series = make_series([(0.0, 1.0)])
    assert series.avg_over_time(window_s=1.0, now=10.0) is None
    assert series.max_over_time(window_s=1.0, now=10.0) is None


def test_max_over_time_window():
    series = make_series([(0.0, 9.0), (1.0, 2.0), (2.0, 4.0)])
    assert series.max_over_time() == 9.0
    assert series.max_over_time(window_s=1.5) == 4.0


# -- aligned resampling -------------------------------------------------------

def test_resample_aligns_to_step_multiples():
    series = make_series([(0.3, 1.0), (1.7, 2.0), (3.2, 3.0)])
    aligned = series.resample(1.0)
    assert aligned.times == [1.0, 2.0, 3.0]
    # Zero-order hold: value of the most recent sample at each grid point.
    assert aligned.values == [1.0, 2.0, 2.0]


def test_resample_two_series_share_a_grid():
    a = make_series([(0.1, 1.0), (2.9, 2.0)])
    b = make_series([(0.4, 5.0), (2.6, 6.0)])
    ga, gb = a.resample(0.5), b.resample(0.5)
    shared = set(ga.times) & set(gb.times)
    assert shared  # overlapping grid points exist and are step multiples
    assert all(abs(t / 0.5 - round(t / 0.5)) < 1e-9 for t in shared)


def test_resample_respects_start_end():
    series = make_series([(0.0, 1.0), (5.0, 2.0)])
    aligned = series.resample(1.0, start=2.0, end=4.0)
    assert aligned.times == [2.0, 3.0, 4.0]
    assert aligned.values == [1.0, 1.0, 1.0]


def test_resample_rejects_bad_step():
    series = make_series([(0.0, 1.0)])
    with pytest.raises(ValueError):
        series.resample(0.0)


def test_resample_sample_on_grid_point():
    series = make_series([(1.0, 7.0), (2.0, 8.0)])
    aligned = series.resample(1.0)
    assert aligned.times == [1.0, 2.0]
    assert aligned.values == [7.0, 8.0]
