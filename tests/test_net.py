"""Unit tests for the network substrate (flows, topology, TCP)."""

import pytest

from repro.cluster import Cluster
from repro.hardware import DELL_R620, EDISON
from repro.net import (
    ConnectTimeout, FlowNetwork, Segment, TcpListener, Topology,
)
from repro.net.flows import Flow
from repro.sim import Simulation


def make_pair(sim, spec_a=EDISON, spec_b=EDISON):
    cluster = Cluster(sim)
    a = cluster.add(spec_a, "a")
    b = cluster.add(spec_b, "b")
    return cluster.topology, a, b


# -- FlowNetwork --------------------------------------------------------------

def test_single_flow_runs_at_line_rate():
    sim = Simulation()
    net = FlowNetwork(sim)
    seg = Segment("link", capacity_Bps=100.0)
    done = net.start_flow([seg], nbytes=1000)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_zero_byte_flow_completes_instantly():
    sim = Simulation()
    net = FlowNetwork(sim)
    done = net.start_flow([Segment("s", 1.0)], nbytes=0)
    assert done.triggered


def test_flow_rejects_negative_bytes_and_empty_path():
    sim = Simulation()
    net = FlowNetwork(sim)
    with pytest.raises(ValueError):
        net.start_flow([Segment("s", 1.0)], nbytes=-1)
    with pytest.raises(ValueError):
        net.start_flow([], nbytes=10)


def test_two_flows_share_fairly():
    sim = Simulation()
    net = FlowNetwork(sim)
    seg = Segment("link", capacity_Bps=100.0)
    first = net.start_flow([seg], nbytes=1000)
    second = net.start_flow([seg], nbytes=1000)
    sim.run(until=second)
    # Both at 50 B/s -> both finish at t=20.
    assert sim.now == pytest.approx(20.0)
    assert first.triggered


def test_late_flow_speeds_up_after_departure():
    sim = Simulation()
    net = FlowNetwork(sim)
    seg = Segment("link", capacity_Bps=100.0)

    def scenario():
        first = net.start_flow([seg], nbytes=500)
        second = net.start_flow([seg], nbytes=1000)
        yield first
        # first: 500 B at 50 B/s -> t=10; second has 500 left, now at 100 B/s.
        assert sim.now == pytest.approx(10.0)
        yield second
        assert sim.now == pytest.approx(15.0)

    sim.run(until=sim.process(scenario()))


def test_maxmin_respects_tighter_segment():
    sim = Simulation()
    net = FlowNetwork(sim)
    wide = Segment("wide", capacity_Bps=100.0)
    narrow = Segment("narrow", capacity_Bps=10.0)
    slow = net.start_flow([wide, narrow], nbytes=100)   # capped at 10
    fast = net.start_flow([wide], nbytes=900)           # gets the rest (90)
    sim.run(until=slow)
    assert sim.now == pytest.approx(10.0, rel=1e-3)
    sim.run(until=fast)
    assert sim.now == pytest.approx(10.0, rel=1e-3)


def test_flow_accounts_nic_bytes():
    sim = Simulation()
    topo, a, b = make_pair(sim)
    done = topo.network.start_flow(topo.path("a", "b"), nbytes=1e6)
    sim.run(until=done)
    assert a.nic.bytes_sent == pytest.approx(1e6)
    assert b.nic.bytes_received == pytest.approx(1e6)


# -- Topology -----------------------------------------------------------------

def test_edison_transfer_time_matches_nic():
    sim = Simulation()
    topo, a, b = make_pair(sim)

    def scenario():
        yield from topo.transfer("a", "b", 12.5e6)  # 1 s at 100 Mb/s

    sim.run(until=sim.process(scenario()))
    assert sim.now == pytest.approx(1.0 + 1.3e-3 / 2, rel=1e-3)


def test_dell_to_dell_uses_gigabit():
    sim = Simulation()
    topo, a, b = make_pair(sim, DELL_R620, DELL_R620)

    def scenario():
        yield from topo.transfer("a", "b", 125e6)  # 1 s at 1 Gb/s

    sim.run(until=sim.process(scenario()))
    assert sim.now == pytest.approx(1.0 + 0.24e-3 / 2, rel=1e-3)


def test_rtt_matrix_matches_section_4_4():
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(EDISON, "e0")
    cluster.add(EDISON, "e1")
    cluster.add(DELL_R620, "d0")
    cluster.add(DELL_R620, "d1")
    topo = cluster.topology
    assert topo.rtt("e0", "e1") == pytest.approx(1.3e-3)
    assert topo.rtt("d0", "d1") == pytest.approx(0.24e-3)
    assert topo.rtt("d0", "e0") == pytest.approx(0.8e-3)
    assert topo.rtt("e0", "e0") == 0.0


def test_cross_room_flows_share_the_trunk():
    """Many Edison->Dell flows collectively cap at the 1 Gb/s uplink."""
    sim = Simulation()
    cluster = Cluster(sim)
    edisons = [cluster.add(EDISON, f"e{i}") for i in range(20)]
    dell = cluster.add(DELL_R620, "d0")
    topo = cluster.topology
    done = [topo.network.start_flow(topo.path(e.name, "d0"), 12.5e6)
            for e in edisons]

    def scenario():
        yield sim.all_of(done)

    sim.run(until=sim.process(scenario()))
    # 20 x 12.5 MB = 250 MB; bottleneck = dell rx at 125 MB/s -> 2 s.
    assert sim.now == pytest.approx(2.0, rel=1e-3)


def test_same_room_dell_flows_bypass_trunk():
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(DELL_R620, "d0")
    cluster.add(DELL_R620, "d1")
    path = cluster.topology.path("d0", "d1")
    names = [seg.name for seg in path]
    assert names == ["d0.tx", "d1.rx"]


def test_duplicate_server_name_rejected():
    sim = Simulation()
    cluster = Cluster(sim)
    cluster.add(EDISON, "x")
    with pytest.raises(ValueError):
        cluster.add(EDISON, "x")


# -- TcpListener --------------------------------------------------------------

def test_tcp_connect_succeeds_with_free_slot():
    sim = Simulation()
    listener = TcpListener(sim, "web", max_connections=2)
    results = []

    def client():
        request, stats = yield from listener.connect(rtt=0.001)
        results.append(stats)
        listener.close(request)

    sim.process(client())
    sim.run()
    assert results[0].syn_retries == 0
    assert results[0].connect_delay == pytest.approx(0.001)
    assert listener.accepted == 1


def test_tcp_backlog_overflow_causes_retry_spikes():
    """Blocked SYNs retry at +1 s / +3 s cumulative — Figure 11's spikes."""
    sim = Simulation()
    listener = TcpListener(sim, "web", max_connections=1, syn_backlog=1)
    delays = []

    def holder():
        request, _ = yield from listener.connect(rtt=0)
        yield sim.timeout(2.5)
        listener.close(request)

    def filler():
        # Occupies the single backlog slot until the holder releases.
        request, _ = yield from listener.connect(rtt=0)
        listener.close(request)

    def victim():
        yield sim.timeout(0.001)  # arrive after backlog is full
        request, stats = yield from listener.connect(rtt=0)
        delays.append((stats.syn_retries, round(stats.connect_delay, 3)))
        listener.close(request)

    sim.process(holder())
    sim.process(filler())
    sim.process(victim())
    sim.run()
    retries, delay = delays[0]
    assert retries >= 1
    assert delay >= 1.0  # at least one 1-second SYN retransmission


def test_tcp_connect_times_out_after_retries():
    sim = Simulation()
    listener = TcpListener(sim, "web", max_connections=1, syn_backlog=1)
    outcome = []

    def holder():
        yield from listener.connect(rtt=0)  # never closed

    def filler():
        yield from listener.connect(rtt=0)

    def victim():
        yield sim.timeout(0.001)
        try:
            yield from listener.connect(rtt=0, max_retries=2)
        except ConnectTimeout:
            outcome.append(sim.now)

    sim.process(holder())
    sim.process(filler())
    sim.process(victim())
    sim.run()
    # Dropped at t~0, retried after 1 s and 2 s, then gave up: t ~ 3.001.
    assert outcome and outcome[0] == pytest.approx(3.001)
    assert listener.syn_drops >= 3


def test_tcp_listener_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        TcpListener(sim, "bad", max_connections=0)
