"""Tests for partition tolerance: the reachability overlay, partition
fault kinds, phi-accrual detection and split-brain reconciliation."""

import random

import pytest

from repro.cluster.builders import hadoop_cluster
from repro.faults import (FaultInjector, FaultPlan, PhiAccrualDetector,
                          node_crash, node_set_partition, power_event,
                          rack_partition, switch_down)
from repro.net import NetworkUnreachable
from repro.sim import Simulation


def two_rack_cluster(sim, platform="edison", slaves=4):
    return hadoop_cluster(sim, platform, slaves, racks=2)


# -- the reachability overlay -------------------------------------------------

def test_sever_and_heal_flip_reachability():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    topo = cluster.topology
    assert topo.reachable("edison-slave-0", "edison-slave-2")
    cut = topo.sever(["edison-slave-0", "edison-slave-1"])
    assert not topo.reachable("edison-slave-0", "edison-slave-2")
    assert not topo.reachable("edison-slave-2", "edison-slave-0")
    # Same side of the cut: still connected in both directions.
    assert topo.reachable("edison-slave-0", "edison-slave-1")
    assert topo.reachable("edison-slave-2", "edison-slave-3")
    topo.heal(cut)
    assert topo.reachable("edison-slave-0", "edison-slave-2")


def test_isolate_cuts_intra_set_traffic_too():
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    cut = topo.sever(["edison-slave-0", "edison-slave-1"], isolate=True)
    # A dead ToR switch: the rack's members cannot even see each other.
    assert not topo.reachable("edison-slave-0", "edison-slave-1")
    assert topo.reachable("edison-slave-2", "edison-slave-3")
    # Loopback never needs the fabric.
    assert topo.reachable("edison-slave-0", "edison-slave-0")
    topo.heal(cut)
    assert topo.reachable("edison-slave-0", "edison-slave-1")


def test_sever_validates_nodes_and_heal_validates_ids():
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    with pytest.raises(ValueError):
        topo.sever([])
    with pytest.raises(ValueError):
        topo.sever(["edison-slave-0", "nope"])
    with pytest.raises(ValueError):
        topo.heal(12345)


def test_check_reachable_raises_fail_fast():
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    topo.check_reachable("edison-slave-0", "edison-slave-2")
    topo.sever(["edison-slave-0"])
    with pytest.raises(NetworkUnreachable):
        topo.check_reachable("edison-slave-0", "edison-slave-2")


def test_overlapping_cuts_must_all_heal():
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    first = topo.sever(["edison-slave-0"])
    second = topo.sever(["edison-slave-0", "edison-slave-1"])
    topo.heal(first)
    assert not topo.reachable("edison-slave-0", "edison-slave-2")
    topo.heal(second)
    assert topo.reachable("edison-slave-0", "edison-slave-2")


def test_message_stalls_across_cut_until_heal():
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    cut = topo.sever(["edison-slave-0"])
    done = []

    def talker():
        yield from topo.message("edison-slave-2", "edison-slave-0", 1000)
        done.append(sim.now)

    def healer():
        yield sim.timeout(5.0)
        topo.heal(cut)

    sim.process(talker())
    sim.process(healer())
    sim.run()
    assert done and done[0] >= 5.0


def test_transfer_stalls_across_cut_until_heal():
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    cut = topo.sever(["edison-slave-1"])
    done = []

    def mover():
        yield from topo.transfer("edison-slave-1", "edison-slave-3", 1e6)
        done.append(sim.now)

    def healer():
        yield sim.timeout(2.5)
        topo.heal(cut)

    sim.process(mover())
    sim.process(healer())
    sim.run()
    assert done and done[0] >= 2.5


def test_no_cut_paths_stay_hot_and_cheap():
    """The overlay must be invisible when no partition is active."""
    sim = Simulation()
    topo = two_rack_cluster(sim).topology
    assert topo._cuts == {}
    assert topo.reachable("edison-slave-0", "edison-slave-2")


# -- partition faults through the injector ------------------------------------

def test_partitioned_node_is_up_but_unreachable():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        rack_partition("edison-rack-0", at=2.0, duration=6.0),))
    injector = FaultInjector(cluster, plan)
    sim.run()
    for node in ("edison-slave-0", "edison-slave-1"):
        assert injector.is_up(node)
        assert injector.is_reachable(node)
        assert injector.downtime(node) == 0.0
        assert injector.unreachable_time(node) == pytest.approx(6.0)
    assert injector.unreachable_time("edison-slave-2") == 0.0


def test_partition_record_covers_every_member():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        node_set_partition(("edison-slave-1", "edison-slave-3"),
                           at=1.0, duration=2.0, label="pair"),))
    injector = FaultInjector(cluster, plan)
    sim.run()
    (record,) = injector.records
    assert record.kind == "partition"
    assert set(record.nodes) == {"edison-slave-1", "edison-slave-3"}
    assert record.covers("edison-slave-1")
    assert record.covers("pair")          # the cut label itself
    assert not record.covers("edison-slave-0")
    assert record.duration == pytest.approx(2.0)


def test_partition_listeners_fire_per_member_with_kind():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        switch_down("edison-rack-1", at=1.0, duration=3.0),))
    injector = FaultInjector(cluster, plan)
    events = []
    injector.add_listener(lambda ev, node, kind: events.append(
        (ev, node, kind)))
    sim.run()
    members = {"edison-slave-2", "edison-slave-3"}
    downs = {(n, k) for ev, n, k in events if ev == "down"}
    ups = {(n, k) for ev, n, k in events if ev == "up"}
    assert downs == {(n, "switch_down") for n in members}
    assert ups == {(n, "switch_down") for n in members}


def test_switch_down_isolates_rack_members_from_each_other():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        switch_down("edison-rack-0", at=1.0, duration=4.0),))
    FaultInjector(cluster, plan)
    seen = []

    def probe():
        yield sim.timeout(2.0)
        seen.append(cluster.topology.reachable("edison-slave-0",
                                               "edison-slave-1"))

    sim.process(probe())
    sim.run()
    assert seen == [False]


def test_plain_partition_keeps_intra_set_traffic():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        rack_partition("edison-rack-0", at=1.0, duration=4.0),))
    FaultInjector(cluster, plan)
    seen = []

    def probe():
        yield sim.timeout(2.0)
        seen.append(cluster.topology.reachable("edison-slave-0",
                                               "edison-slave-1"))

    sim.process(probe())
    sim.run()
    assert seen == [True]


def test_partition_of_unknown_rack_rejected_up_front():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        rack_partition("edison-rack-9", at=1.0, duration=1.0),))
    with pytest.raises(ValueError):
        FaultInjector(cluster, plan)


def test_detected_down_covers_partitions():
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        rack_partition("edison-rack-0", at=1.0, duration=5.0),))
    injector = FaultInjector(cluster, plan, detection_s=0.5)
    seen = {}

    def probe():
        yield sim.timeout(1.2)       # inside the detection window
        seen["early"] = injector.detected_down("edison-slave-0")
        yield sim.timeout(1.0)       # past it
        seen["late"] = injector.detected_down("edison-slave-0")
        yield sim.timeout(5.0)       # healed
        seen["healed"] = injector.detected_down("edison-slave-0")

    sim.process(probe())
    sim.run()
    assert seen == {"early": False, "late": True, "healed": False}


# -- phi-accrual detection ----------------------------------------------------

def test_phi_parameter_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        PhiAccrualDetector(sim, threshold=0.0)
    with pytest.raises(ValueError):
        PhiAccrualDetector(sim, window=1)
    with pytest.raises(ValueError):
        PhiAccrualDetector(sim, min_std_s=0.0)


def test_phi_rises_with_silence():
    sim = Simulation()
    detector = PhiAccrualDetector(sim, threshold=8.0, min_std_s=0.05)
    for t in range(20):
        detector.beat("n", at=float(t))
    assert detector.phi("n", now=19.2) < 1.0
    assert detector.phi("n", now=30.0) >= detector.threshold
    assert detector.is_suspect("n", now=30.0)
    # A node never heard from carries no suspicion at all.
    assert detector.phi("ghost") == 0.0


def test_phi_adapts_to_jitter():
    """A jittery node earns more grace than a metronomic one."""
    sim = Simulation()
    detector = PhiAccrualDetector(sim, min_std_s=0.01)
    t = 0.0
    for i in range(40):
        t += 1.0
        detector.beat("steady", at=t)
    t = 0.0
    rng = random.Random(7)
    for i in range(40):
        t += rng.uniform(0.5, 1.5)
        detector.beat("jittery", at=t)
    steady_last = detector._last["steady"]
    jittery_last = detector._last["jittery"]
    silence = 2.5
    assert detector.phi("steady", now=steady_last + silence) > \
        detector.phi("jittery", now=jittery_last + silence)


def test_wait_suspect_convicts_on_silence():
    sim = Simulation()
    detector = PhiAccrualDetector(sim, threshold=8.0)
    outcome = []

    def feeder():
        for _ in range(10):
            yield sim.timeout(1.0)
            detector.beat("n")
        # ... then silence forever.

    def decider():
        yield sim.timeout(10.5)
        verdict = yield from detector.wait_suspect("n")
        outcome.append((verdict, sim.now))

    sim.process(feeder())
    sim.process(decider())
    sim.run()
    (verdict, at) = outcome[0]
    assert verdict is True
    assert at > 11.0      # conviction needed real silence, not a tick


def test_wait_suspect_releases_when_healthy_returns():
    sim = Simulation()
    detector = PhiAccrualDetector(sim, threshold=8.0)
    healthy = {"flag": False}
    outcome = []

    def feeder():
        for _ in range(10):
            yield sim.timeout(1.0)
            detector.beat("n")
        yield sim.timeout(0.8)
        healthy["flag"] = True       # the partition healed in time
        detector.beat("n")

    def decider():
        yield sim.timeout(10.2)
        verdict = yield from detector.wait_suspect(
            "n", healthy=lambda: healthy["flag"])
        outcome.append(verdict)

    sim.process(feeder())
    sim.process(decider())
    sim.run()
    assert outcome == [False]


def test_heartbeat_feeder_goes_silent_while_severed():
    from repro.durability.plane import _heartbeat_feeder
    from repro.sim import RngStreams
    sim = Simulation()
    cluster = two_rack_cluster(sim)
    plan = FaultPlan(faults=(
        rack_partition("edison-rack-0", at=5.0, duration=6.0),))
    FaultInjector(cluster, plan)
    detector = PhiAccrualDetector(sim)
    rng = RngStreams(1).stream("phi")
    sim.process(_heartbeat_feeder(sim, detector, "edison-slave-0", rng,
                                  1.0, until=16.0))
    phis = {}

    def probe():
        yield sim.timeout(10.0)
        phis["mid"] = detector.phi("edison-slave-0")
        yield sim.timeout(5.0)
        phis["after"] = detector.phi("edison-slave-0")

    sim.process(probe())
    sim.run()
    # Five seconds of dropped beats look exactly like death...
    assert phis["mid"] >= detector.threshold
    # ...and the healed node's resumed beats clear the suspicion.
    assert phis["after"] < detector.threshold


# -- split-brain reconciliation ----------------------------------------------

def run_partitioned_job(platform="dell", at=20.0, duration=6.0):
    import dataclasses

    from repro.mapreduce import JOB_FACTORIES, JobRunner
    spec, config = JOB_FACTORIES["wordcount2"](platform, 8)
    config = dataclasses.replace(config, replication=2)
    runner = JobRunner(platform, 8, config=config, seed=20260809, racks=2)
    plan = FaultPlan(faults=(
        rack_partition(f"{platform}-rack-0", at=at, duration=duration),))
    injector = FaultInjector(runner.cluster, plan)
    report = runner.run(spec)
    return runner, injector, report


def test_split_brain_spawns_and_reconciles_zombies():
    runner, injector, report = run_partitioned_job()
    counters = runner.partition_counters
    assert counters["zombies_started"] > 0
    # Every duplicate attempt was killed at heal; none leaked.
    assert counters["duplicate_kills"] == counters["zombies_started"]
    assert counters["reregistered"] == 4       # the whole severed rack
    assert not runner._zombies                 # reconciliation drained
    assert report.seconds > 0


def test_partition_accrues_no_downtime_vs_control():
    import dataclasses

    from repro.mapreduce import JOB_FACTORIES, JobRunner
    runner, injector, report = run_partitioned_job()
    slaves = [s.name for s in runner.slave_servers]
    assert sum(injector.downtime(n) for n in slaves) == 0.0
    assert sum(injector.unreachable_time(n) for n in slaves) == \
        pytest.approx(4 * 6.0)
    # The control replay (no faults at all) books the same downtime.
    spec, config = JOB_FACTORIES["wordcount2"]("dell", 8)
    config = dataclasses.replace(config, replication=2)
    control = JobRunner("dell", 8, config=config, seed=20260809, racks=2)
    control_injector = FaultInjector(control.cluster, FaultPlan.empty())
    control.run(spec)
    assert sum(control_injector.downtime(n) for n in slaves) == 0.0


def test_expired_node_reregisters_with_yarn_after_heal():
    runner, injector, _ = run_partitioned_job()
    # After the run every slave is back in the scheduler's rotation.
    for name in (s.name for s in runner.slave_servers):
        assert name in runner.yarn.nodes
        assert not runner.yarn.nodes[name].down


def test_heal_before_expiry_never_convicts():
    """A blip shorter than the liveness window is invisible to YARN."""
    runner, injector, report = run_partitioned_job(duration=1.0)
    counters = runner.partition_counters
    assert counters["zombies_started"] == 0
    assert counters["reregistered"] == 0
    assert not runner._partition_expired


# -- property: overlapping faults never corrupt the books ---------------------

def test_overlapping_fault_soup_keeps_accounting_sane():
    """Seeded random plans of crashes, power events, partitions and
    admin park/resume cycles: downtime and unreachable time are never
    negative, fault records are written exactly once per fault and all
    closed, and no node ends the day stuck down or severed."""
    rng = random.Random(20260809)
    for trial in range(8):
        sim = Simulation()
        cluster = two_rack_cluster(sim)
        slaves = [n for n in cluster.servers if "slave" in n]
        faults = []
        for _ in range(rng.randrange(2, 6)):
            node = rng.choice(slaves)
            at = rng.uniform(0.0, 10.0)
            duration = rng.uniform(0.5, 8.0)
            roll = rng.random()
            if roll < 0.3:
                faults.append(node_crash(node, at=at, repair_s=duration))
            elif roll < 0.5:
                faults.append(power_event(node, at=at, outage_s=duration,
                                          reboot_s=0.5))
            elif roll < 0.75:
                faults.append(rack_partition(
                    f"edison-rack-{rng.randrange(2)}", at=at,
                    duration=duration))
            else:
                faults.append(node_set_partition(
                    tuple(rng.sample(slaves, 2)), at=at,
                    duration=duration, label=f"cut-{trial}"))
        plan = FaultPlan(faults=tuple(faults))
        injector = FaultInjector(cluster, plan)
        victim = rng.choice(slaves)
        park_at = rng.uniform(0.0, 12.0)

        def admin_cycle(node=victim, at=park_at):
            yield sim.timeout(at)
            injector.admin_power_off(node)
            yield sim.timeout(1.0)
            injector.admin_begin_boot(node)
            yield sim.timeout(0.5)
            injector.admin_power_on(node)

        sim.process(admin_cycle())
        sim.run()
        horizon = sim.now
        assert len(injector.records) == len(faults)
        for record in injector.records:
            assert record.end is not None
            assert record.duration >= 0
        for node in slaves:
            assert injector.downtime(node, until=horizon) >= 0.0
            assert injector.unreachable_time(node, until=horizon) >= 0.0
            status = injector.status[node]
            assert status.up, f"{node} stuck down (trial {trial})"
            assert status.down_tokens == 0
            assert status.unpowered_tokens == 0
            assert status.unreachable_tokens == 0
            assert status.down_since is None
            assert status.unreachable_since is None
            assert not status.admin_off and not status.admin_booting
            assert injector.admin_state(node) == "on"
        assert cluster.topology._cuts == {}, f"unhealed cut (trial {trial})"


# -- the web rotation under a partition ---------------------------------------

def test_rotation_converges_to_ground_truth_through_a_partition():
    """The LB marks live-but-unreachable backends dead for exactly the
    severed window: out after the detection delay, back at heal."""
    from repro.web.rotation import WeightedRotation

    class StubWeb:
        def __init__(self, server):
            self.server = server

    sim = Simulation()
    cluster = hadoop_cluster(sim, "edison", 4, racks=2)
    FaultInjector(cluster, FaultPlan(faults=(
        rack_partition("edison-rack-0", at=5.0, duration=10.0),)),
        detection_s=0.25)
    rotation = WeightedRotation(sim)
    names = [f"edison-slave-{i}" for i in range(4)]
    for name in names:
        rotation.add(StubWeb(cluster.servers[name]), weight=1.0)

    active = {}

    def sample(at):
        yield sim.timeout(at)
        picked = {rotation.pick().server.name for _ in range(8)}
        active[at] = picked

    for at in (4.0, 7.0, 16.0):
        sim.process(sample(at))
    sim.run()
    assert active[4.0] == set(names)               # before the cut
    assert active[7.0] == {"edison-slave-2", "edison-slave-3"}
    assert active[16.0] == set(names)              # ground truth restored
