"""Property-based tests (hypothesis) for core data structures/invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import speedup_per_doubling
from repro.hardware import MemorySpec, PowerSpec, StorageSpec
from repro.net import FlowNetwork, Segment
from repro.sim import Container, Resource, Simulation, TimeSeries
from repro.tco import TcoInputs, cluster_tco
from repro.web.params import tuned_calls_per_connection
from repro.workloads import split_evenly


# -- kernel ordering -----------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_events_fire_in_time_order(delays):
    sim = Simulation()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.integers(min_value=1, max_value=20),
       st.lists(st.floats(min_value=0.01, max_value=10, allow_nan=False),
                min_size=1, max_size=40))
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulation()
    resource = Resource(sim, capacity=capacity)
    observed = []

    def user(hold):
        with resource.request() as req:
            yield req
            observed.append(resource.count)
            yield sim.timeout(hold)

    for hold in holds:
        sim.process(user(hold))
    sim.run()
    assert all(1 <= count <= capacity for count in observed)
    assert resource.count == 0
    assert resource.queue_length == 0
    # Busy time cannot exceed capacity x elapsed.
    assert resource.busy_time() <= capacity * sim.now + 1e-9


@given(st.floats(min_value=1, max_value=1e6, allow_nan=False),
       st.lists(st.tuples(st.booleans(),
                          st.floats(min_value=0.01, max_value=100)),
                max_size=30))
def test_container_level_stays_in_bounds(capacity, operations):
    sim = Simulation()
    box = Container(sim, capacity=capacity, init=capacity / 2)

    def driver():
        for is_put, amount in operations:
            amount = min(amount, capacity / 4)
            event = box.put(amount) if is_put else box.get(amount)
            # Avoid deadlock: only wait if it can ever be satisfied.
            if event.triggered:
                yield sim.timeout(0.001)
        yield sim.timeout(0)

    sim.process(driver())
    sim.run()
    assert 0 <= box.level <= capacity


# -- time series ----------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1000),
                          st.floats(min_value=0, max_value=500)),
                min_size=2, max_size=50))
def test_integral_of_nonnegative_series_is_nonnegative(samples):
    series = TimeSeries()
    for t, v in sorted(samples, key=lambda p: p[0]):
        series.record(t, v)
    assert series.integrate() >= 0
    assert series.maximum() >= series.mean() - 1e-12


@given(st.floats(min_value=0.1, max_value=1000),
       st.floats(min_value=0, max_value=500),
       st.integers(min_value=2, max_value=50))
def test_constant_power_energy_identity(duration, watts, samples):
    """Energy of a constant-power trace == P x T at any sampling rate."""
    series = TimeSeries()
    for i in range(samples):
        series.record(duration * i / (samples - 1), watts)
    assert math.isclose(series.integrate(), watts * duration,
                        rel_tol=1e-9, abs_tol=1e-9)


# -- flows -----------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=3),
                          st.floats(min_value=1, max_value=1e7)),
                min_size=1, max_size=20))
@settings(deadline=None)
def test_all_flows_complete_and_account_bytes(flow_specs):
    sim = Simulation()
    net = FlowNetwork(sim)
    segments = [Segment(f"s{i}", 1e6) for i in range(4)]
    events = []
    total = 0.0
    for a, b, nbytes in flow_specs:
        path = [segments[a]] if a == b else [segments[a], segments[b]]
        events.append(net.start_flow(path, nbytes))
        total += nbytes
    sim.run()
    assert all(e.triggered for e in events)
    assert net.active_count == 0
    # Lower bound: everything through one segment at its capacity.
    assert sim.now * 4 * 1e6 >= total * 0.999


@given(st.floats(min_value=1, max_value=1e9),
       st.floats(min_value=1, max_value=1e9))
def test_single_flow_time_is_bytes_over_capacity(nbytes, capacity):
    sim = Simulation()
    net = FlowNetwork(sim)
    done = net.start_flow([Segment("s", capacity)], nbytes)
    sim.run(until=done)
    assert math.isclose(sim.now, nbytes / capacity, rel_tol=1e-3,
                        abs_tol=1e-6)


# -- hardware specs ---------------------------------------------------------------

@given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_power_monotone_in_cpu_utilisation(u1, u2):
    spec = PowerSpec(idle_w=10, busy_w=50, weights={"cpu": 1.0})
    lo, hi = sorted((u1, u2))
    assert spec.power({"cpu": lo}) <= spec.power({"cpu": hi})
    assert spec.min_w <= spec.power({"cpu": u1}) <= spec.max_w


@given(st.integers(min_value=256, max_value=1 << 22),
       st.integers(min_value=1, max_value=32))
def test_memory_bandwidth_bounded_and_monotone(block, threads):
    spec = MemorySpec(capacity_bytes=1e9, peak_bandwidth_bps=2.2e9,
                      saturation_threads=2)
    rate = spec.bandwidth(block, threads)
    assert 0 < rate <= spec.peak_bandwidth_bps
    assert rate <= spec.bandwidth(block * 2, threads)
    assert rate <= spec.bandwidth(block, threads + 1)


@given(st.floats(min_value=1, max_value=1e8))
def test_storage_io_time_positive_and_additive(nbytes):
    spec = StorageSpec(write_bps=4.5e6, buffered_write_bps=9.3e6,
                       read_bps=19.5e6, buffered_read_bps=737e6,
                       write_latency_s=0.018, read_latency_s=0.007)
    from repro.hardware import Storage
    sim = Simulation()
    disk = Storage(sim, spec)
    t = disk.io_time("read", nbytes)
    assert t >= spec.read_latency_s
    assert disk.io_time("read", 2 * nbytes) > t


# -- metrics / models ----------------------------------------------------------------

@given(st.floats(min_value=1, max_value=1e5),
       st.integers(min_value=2, max_value=6))
def test_exact_halving_gives_speedup_two(base_time, steps):
    times = {2 ** i: base_time / (2 ** i) for i in range(steps)}
    assert math.isclose(speedup_per_doubling(times), 2.0, rel_tol=1e-9)


@given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_tco_monotone_in_utilisation(u1, u2):
    inputs = TcoInputs(node_cost_usd=100, peak_power_w=100, idle_power_w=50)
    lo, hi = sorted((u1, u2))
    assert cluster_tco(inputs, 5, lo) <= cluster_tco(inputs, 5, hi)


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=200))
def test_split_evenly_conserves_bytes(count, per_file):
    total = count * per_file + count // 2
    files = split_evenly(total, count, "f", bytes_per_record=7)
    assert sum(f.size_bytes for f in files) == total
    sizes = [f.size_bytes for f in files]
    assert max(sizes) - min(sizes) <= 1     # near-equal split


@given(st.integers(min_value=1, max_value=10000),
       st.floats(min_value=1, max_value=1e6))
def test_tuned_calls_always_in_bounds(concurrency, target):
    calls = tuned_calls_per_connection(concurrency, target)
    assert 5 <= calls <= 40
