"""Tests for repro.resilience: breaker mechanics, config validation,
the energy ledger, seeded backoff, off-path bit-identity, and the two
gray-failure mitigations (LATE speculation, web hedging/shedding) —
plus the satellite fixes riding this PR: overlapping faults on one
node, client-side failures in the SLO arithmetic, and the TCP SYN
retry budget past the kernel table."""

import json
import os
from dataclasses import asdict

import pytest

from repro.cluster import edison_cluster
from repro.faults import FaultInjector, FaultPlan
from repro.faults.models import (cpu_throttle, nic_degrade, node_crash,
                                 packet_loss, power_event)
from repro.mapreduce import JOB_FACTORIES, JobRunner
from repro.net.tcp import SYN_RETRY_DELAYS, ConnectTimeout, TcpListener
from repro.resilience import (AdmissionConfig, BreakerConfig, CircuitBreaker,
                              HedgeConfig, ResilienceConfig, ResilienceLedger,
                              RetryPolicy, SpeculationConfig)
from repro.resilience.report import job_gray_plan, web_gray_plan
from repro.sim import Simulation, backoff_delay
from repro.telemetry import SloReport, SloSpec, Telemetry
from repro.web import WebServiceDeployment

EXPERIMENTS = os.path.join(os.path.dirname(__file__), "..", "experiments")


# -- circuit breaker ----------------------------------------------------------

def make_breaker(sim, **overrides):
    defaults = dict(failure_threshold=3, cooldown_s=2.0, slow_call_s=1.0)
    defaults.update(overrides)
    return CircuitBreaker(sim, "backend", BreakerConfig(**defaults))


def test_breaker_trips_at_consecutive_failure_threshold():
    sim = Simulation()
    breaker = make_breaker(sim)
    assert breaker.allow()
    breaker.record_failure()
    breaker.record_success()        # success resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()        # third consecutive
    assert breaker.state == "open"
    assert breaker.open_count == 1
    assert not breaker.allow()


def test_breaker_half_open_admits_one_probe_then_closes():
    sim = Simulation()
    breaker = make_breaker(sim)
    for _ in range(3):
        breaker.record_failure()
    sim.run(until=1.0)
    assert not breaker.allow()      # still cooling down
    sim.run(until=2.5)
    assert breaker.allow()          # the single half-open probe
    assert breaker.state == "half_open"
    assert not breaker.allow()      # probe slot already claimed
    breaker.record_success(duration_s=0.1)
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_probe_failure_restarts_cooldown():
    sim = Simulation()
    breaker = make_breaker(sim)
    for _ in range(3):
        breaker.record_failure()
    sim.run(until=2.5)
    assert breaker.allow()
    breaker.record_failure()        # probe failed
    assert breaker.state == "open"
    assert breaker.open_count == 2
    assert breaker.opened_at == 2.5
    assert not breaker.allow()


def test_breaker_slow_success_counts_as_failure():
    sim = Simulation()
    breaker = make_breaker(sim)
    # Gray failures answer 200 but late: slow successes alone must trip.
    for _ in range(3):
        breaker.record_success(duration_s=1.5)
    assert breaker.state == "open"
    # An un-timed success never counts against the breaker.
    breaker = make_breaker(sim)
    for _ in range(10):
        breaker.record_success()
    assert breaker.state == "closed"


# -- configuration ------------------------------------------------------------

@pytest.mark.parametrize("factory, kwargs", [
    (SpeculationConfig, {"check_interval_s": 0.0}),
    (SpeculationConfig, {"late_factor": 1.0}),
    (SpeculationConfig, {"min_completed": 0}),
    (SpeculationConfig, {"max_outstanding": 0}),
    (SpeculationConfig, {"allocation_heartbeats": 0}),
    (RetryPolicy, {"max_retries": -1}),
    (RetryPolicy, {"backoff_base_s": 0.0}),
    (RetryPolicy, {"jitter": 1.5}),
    (BreakerConfig, {"failure_threshold": 0}),
    (BreakerConfig, {"cooldown_s": 0.0}),
    (BreakerConfig, {"slow_call_s": 0.0}),
    (HedgeConfig, {"trigger_s": 0.0}),
    (AdmissionConfig, {"queue_fraction": 0.0}),
    (AdmissionConfig, {"queue_fraction": 1.1}),
])
def test_config_validation_rejects_bad_knobs(factory, kwargs):
    with pytest.raises(ValueError):
        factory(**kwargs)


def test_disabled_config_switches_every_mechanism_off():
    assert ResilienceConfig().any_enabled
    off = ResilienceConfig.disabled()
    assert not off.any_enabled
    assert not (off.speculation or off.retries or off.breakers
                or off.hedging or off.shedding)
    assert ResilienceConfig(speculation=False, retries=False, breakers=False,
                            hedging=False).any_enabled   # shedding remains


# -- the energy ledger --------------------------------------------------------

def test_ledger_charges_by_category_and_node():
    ledger = ResilienceLedger()
    ledger.charge("hedge", "web-0", seconds=2.0, watts=1.5)
    ledger.charge("hedge", "web-1", seconds=1.0, watts=1.5)
    ledger.charge("speculation", "web-0", seconds=10.0, watts=0.5)
    assert ledger.waste_joules["hedge"] == pytest.approx(4.5)
    assert ledger.waste_seconds["hedge"] == pytest.approx(3.0)
    assert ledger.total_waste_joules == pytest.approx(9.5)
    assert ledger.node_joules["web-0"] == pytest.approx(8.0)
    costs = ledger.to_mitigation_costs()
    assert costs.hedge_j == pytest.approx(4.5)
    assert costs.speculative_j == pytest.approx(5.0)
    summary = ledger.summary()
    assert summary["total_waste_joules"] == pytest.approx(9.5)
    assert summary["counters"]["hedges"] == 0


def test_ledger_rejects_bad_charges():
    ledger = ResilienceLedger()
    with pytest.raises(ValueError):
        ledger.charge("gremlin", "web-0", seconds=1.0, watts=1.0)
    with pytest.raises(ValueError):
        ledger.charge("hedge", "web-0", seconds=-1.0, watts=1.0)
    with pytest.raises(ValueError):
        ledger.charge("hedge", "web-0", seconds=1.0, watts=-1.0)
    assert ledger.total_waste_joules == 0.0


def test_marginal_vcore_watts_matches_linear_power_model():
    sim = Simulation()
    cluster = edison_cluster(sim, 1)
    server = cluster.servers["edison-0"]
    power = server.spec.power
    expected = (power.max_w - power.min_w) / server.cpu.spec.vcores
    assert ResilienceLedger.marginal_vcore_watts(server) == pytest.approx(
        expected)
    assert expected > 0


# -- seeded backoff (satellite: shared jitter helpers) ------------------------

def test_backoff_delay_grows_caps_and_stays_seeded():
    import random
    rng = random.Random(7)
    # jitter=0 makes the schedule exact: base * 2^n, clamped at the cap.
    assert backoff_delay(rng, 0, 0.1, 10.0, jitter=0.0) == pytest.approx(0.1)
    assert backoff_delay(rng, 3, 0.1, 10.0, jitter=0.0) == pytest.approx(0.8)
    assert backoff_delay(rng, 9, 0.1, 10.0, jitter=0.0) == pytest.approx(10.0)
    # With jitter the draw scales into [1 - jitter, 1] and is
    # reproducible from the seed.
    draws_a = [backoff_delay(random.Random(11), n, 0.1, 10.0, jitter=0.5)
               for n in range(5)]
    draws_b = [backoff_delay(random.Random(11), n, 0.1, 10.0, jitter=0.5)
               for n in range(5)]
    assert draws_a == draws_b
    for n, delay in enumerate(draws_a):
        nominal = min(10.0, 0.1 * 2 ** n)
        assert nominal * 0.5 <= delay <= nominal


def test_backoff_delay_validation():
    import random
    rng = random.Random(1)
    with pytest.raises(ValueError):
        backoff_delay(rng, -1, 0.1, 1.0)
    with pytest.raises(ValueError):
        backoff_delay(rng, 0, 0.0, 1.0)
    with pytest.raises(ValueError):
        backoff_delay(rng, 0, 0.1, 0.0)
    with pytest.raises(ValueError):
        backoff_delay(rng, 0, 0.1, 1.0, jitter=2.0)


# -- TCP SYN retry budget (satellite: clamp fix regression) -------------------

def test_tcp_connect_honors_budget_past_kernel_table():
    """max_retries > len(SYN_RETRY_DELAYS) extends the schedule by
    repeating the final backoff step instead of silently capping."""
    sim = Simulation()
    listener = TcpListener(sim, "srv", max_connections=1, syn_backlog=1)
    outcome = {}

    def holder():
        # Takes the only slot immediately and never releases it.
        yield from listener.connect(rtt=0.0)
        yield 10_000.0

    def waiter():
        yield 0.01
        # Queues on the slot forever, keeping the SYN backlog full.
        yield from listener.connect(rtt=0.0)

    def victim():
        yield 0.02
        start = sim.now
        try:
            yield from listener.connect(rtt=0.0, max_retries=7)
        except ConnectTimeout:
            outcome["waited"] = sim.now - start

    sim.process(holder())
    sim.process(waiter())
    sim.process(victim())
    sim.run(until=100.0)
    # 4 kernel-table steps plus 3 repeats of the final 8 s step.
    expected = sum(SYN_RETRY_DELAYS) + 3 * SYN_RETRY_DELAYS[-1]
    assert outcome["waited"] == pytest.approx(expected)
    assert listener.syn_drops == 8   # initial SYN + 7 retries


# -- overlapping faults on one node (satellite) -------------------------------

def test_crash_during_power_outage_is_one_continuous_outage():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    injector = FaultInjector(cluster, FaultPlan(faults=(
        power_event("edison-0", at=1.0, outage_s=4.0, reboot_s=1.0),
        node_crash("edison-0", at=2.0, repair_s=1.0))))
    server = cluster.servers["edison-0"]
    util = server.utilization_window()
    sim.run(until=2.5)               # both faults active
    assert not injector.is_up("edison-0")
    assert injector.node_watts(server, util) == 0.0   # unplugged wins
    sim.run(until=3.5)               # crash repaired, outage continues
    assert not injector.is_up("edison-0")
    assert injector.node_watts(server, util) == 0.0
    sim.run(until=5.5)               # power back, rebooting at idle draw
    assert not injector.is_up("edison-0")
    assert injector.node_watts(server, util) == server.spec.power.min_w
    sim.run()
    assert injector.is_up("edison-0")
    # One continuous outage from t=1 to t=6, not two overlapping spans.
    assert injector.downtime("edison-0") == pytest.approx(5.0)


def test_nic_degrade_and_packet_loss_stack_multiplicatively():
    sim = Simulation()
    cluster = edison_cluster(sim, 2)
    tx, rx = cluster.topology.nic_segments("edison-0")
    base_tx, base_rx = tx.capacity_Bps, rx.capacity_Bps
    FaultInjector(cluster, FaultPlan(faults=(
        nic_degrade("edison-0", at=0.5, duration=2.0, factor=0.5),
        packet_loss("edison-0", at=1.0, duration=1.0, loss=0.3))))
    sim.run(until=1.5)               # both active: 0.5 * (1 - 0.3)
    assert tx.capacity_Bps == pytest.approx(base_tx * 0.35)
    assert rx.capacity_Bps == pytest.approx(base_rx * 0.35)
    sim.run(until=2.2)               # loss ended, degrade continues
    assert tx.capacity_Bps == pytest.approx(base_tx * 0.5)
    sim.run()
    # Bit-identical restore after the stack fully unwinds.
    assert tx.capacity_Bps == base_tx
    assert rx.capacity_Bps == base_rx


def test_stacked_cpu_throttles_compose_and_restore_exactly():
    sim = Simulation()
    cluster = edison_cluster(sim, 1)
    cpu = cluster.servers["edison-0"].cpu
    FaultInjector(cluster, FaultPlan(faults=(
        cpu_throttle("edison-0", at=0.5, duration=2.0, factor=0.5),
        cpu_throttle("edison-0", at=1.0, duration=1.0, factor=0.2))))
    sim.run(until=1.5)
    assert cpu.throttle == pytest.approx(0.1)
    sim.run(until=2.2)
    assert cpu.throttle == pytest.approx(0.5)
    sim.run()
    assert cpu.throttle == 1.0       # exact nominal, not 0.5/0.5*0.2/0.2


# -- client-side failures in the SLO ledger (satellite) -----------------------

def test_slo_client_failures_count_as_request_and_error():
    spec = SloSpec(availability_target=0.999, latency_p95_s=3.0)
    clean = SloReport(spec=spec, requests=10_000, errors=0, p95_s=0.1)
    assert clean.availability == 1.0
    assert clean.availability_met
    # 12 give-ups only the client saw: each adds one request AND one
    # error, so availability drops below the three-nines target.
    report = SloReport(spec=spec, requests=10_000, errors=0, p95_s=0.1,
                       client_failures=12)
    assert report.total_requests == 10_012
    assert report.total_errors == 12
    assert report.availability == pytest.approx(1.0 - 12 / 10_012)
    assert not report.availability_met
    assert report.error_budget == 10   # int(10_012 * 0.001)
    assert report.budget_consumed == pytest.approx(12 / 10)
    assert any("12 client-side failures" in line for line in report.lines())


def test_slo_report_roundtrip_keeps_client_failures():
    spec = SloSpec()
    report = SloReport(spec=spec, requests=100, errors=2, p95_s=0.5,
                       client_failures=3)
    again = SloReport.from_dict(report.to_dict())
    assert again == report
    # Dicts written before the field existed default to zero.
    legacy = report.to_dict()
    del legacy["client_failures"]
    assert SloReport.from_dict(legacy).client_failures == 0


def test_telemetry_note_client_outcomes():
    telemetry = Telemetry()
    telemetry.note_client_outcomes(timeouts=2, give_ups=1)
    assert telemetry.slo_report().client_failures == 3
    with pytest.raises(ValueError):
        telemetry.note_client_outcomes(timeouts=-1)


# -- off-path bit-identity ----------------------------------------------------

def test_resilience_off_is_bit_identical():
    """resilience=None and ResilienceConfig.disabled() must not perturb
    a run in any way — same seed, float-identical level results."""
    def run(resilience):
        deployment = WebServiceDeployment("edison", "1/8", seed=11,
                                          resilience=resilience)
        return asdict(deployment.run_level(16, duration=2.0, warmup=0.5))

    assert run(None) == run(ResilienceConfig.disabled())


# -- the committed gray-failure plans -----------------------------------------

def test_committed_gray_plan_json_matches_builders():
    """experiments/gray_failures.json is the builders' output verbatim,
    so the CI smoke replays exactly what the code would generate."""
    with open(os.path.join(EXPERIMENTS, "gray_failures.json"),
              encoding="utf-8") as handle:
        committed = json.load(handle)
    web_nodes = [f"web-{i}" for i in range(5)]
    job_nodes = [f"edison-slave-{i}" for i in range(3)]
    assert FaultPlan.from_dict(committed["web"]) == web_gray_plan(web_nodes)
    assert FaultPlan.from_dict(committed["job"]) == job_gray_plan(job_nodes)
    with pytest.raises(ValueError):
        web_gray_plan(web_nodes[:4])
    with pytest.raises(ValueError):
        job_gray_plan(job_nodes[:2])


# -- mitigations under gray faults (integration) ------------------------------

def test_web_mitigations_engage_and_charge_the_ledger():
    def run(resilience):
        deployment = WebServiceDeployment("edison", "1/8", seed=7,
                                          resilience=resilience)
        deployment.attach_faults(FaultPlan(faults=(
            cpu_throttle("web-0", at=0.5, duration=100.0, factor=0.08),)))
        level = deployment.run_level(24, duration=6.0, warmup=0.5)
        return deployment, level

    unmitigated, level_u = run(None)
    mitigated, level_m = run(ResilienceConfig())
    assert unmitigated.resilience_ledger is None
    ledger = mitigated.resilience_ledger
    assert ledger is not None
    # Hedging reaps the throttled backend's slow calls, shedding keeps
    # its queue bounded — and both charge their joules to the ledger.
    assert ledger.counters["hedges"] > 0
    assert ledger.counters["hedge_wins"] > 0
    assert ledger.counters["sheds"] > 0
    assert ledger.waste_joules["hedge"] > 0
    assert level_m.mean_delay_s < 3.0
    assert level_m.ok_calls >= level_u.ok_calls


def test_late_speculation_contains_a_persistent_straggler():
    """One slave of four stuck at 8% clock on the single-wave job:
    speculative twins must beat waiting out the limper by a wide
    margin, and every duplicate second lands on the ledger."""
    def run(resilience):
        spec, config = JOB_FACTORIES["wordcount2"]("edison", 4)
        runner = JobRunner("edison", 4, config=config, seed=7,
                           resilience=resilience)
        FaultInjector(runner.cluster, FaultPlan(faults=(
            cpu_throttle("edison-slave-0", at=30.0, duration=1e9,
                         factor=0.08),)))
        return runner, runner.run(spec)

    _, report_u = run(None)
    runner_m, report_m = run(ResilienceConfig())
    assert report_m.seconds < report_u.seconds / 2
    ledger = runner_m.resilience_ledger
    assert ledger.counters["speculative_launches"] >= 1
    assert ledger.counters["speculative_wins"] >= 1
    assert ledger.waste_joules["speculation"] > 0
