"""Tests for the scaling-grid API and web sweep summaries."""

import pytest

from repro.core import paperdata as paper
from repro.mapreduce import run_scaling_grid
from repro.mapreduce.scaling import (
    paper_energies, paper_mean_speedup, paper_times,
)
from repro.web import WebWorkload
from repro.web.httperf import LevelResult
from repro.web.runner import SweepResult


def test_paper_times_and_energies_lookup():
    times = paper_times("wordcount", "edison")
    assert times[35] == 310
    assert times[4] == 3283
    energies = paper_energies("terasort", "dell")
    assert energies[1] == 111422


def test_paper_mean_speedup_recomputes_section53():
    assert paper_mean_speedup("edison") == pytest.approx(
        paper.S53_EDISON_MEAN_SPEEDUP, abs=0.15)
    assert paper_mean_speedup("dell") == pytest.approx(
        paper.S53_DELL_MEAN_SPEEDUP, abs=0.35)


def test_run_scaling_grid_small():
    grid = run_scaling_grid("edison", sizes=(4, 8), jobs=("pi",))
    assert set(grid.reports["pi"]) == {4, 8}
    times = grid.times("pi")
    assert times[8] < times[4]
    energies = grid.energies("pi")
    assert all(value > 0 for value in energies.values())
    assert 1.2 < grid.mean_speedup() < 2.5


def _level(concurrency, ok_calls, errors=0, power=50.0, window=2.0):
    return LevelResult(
        platform="edison", concurrency=concurrency, calls_per_connection=10,
        window_s=window, ok_calls=ok_calls, error_calls=errors,
        timeout_calls=0, failed_connections=0, connections=ok_calls // 10,
        syn_retries=0, mean_delay_s=0.01, mean_power_w=power)


def test_sweep_result_peak_excludes_error_levels():
    sweep = SweepResult(
        platform="edison", scale="full", workload=WebWorkload(),
        levels=(
            _level(256, 8000),
            _level(512, 14000),
            _level(1024, 16000, errors=120),   # paper excludes 5xx levels
        ))
    assert sweep.peak_rps() == pytest.approx(7000)    # 14000 / 2 s
    assert sweep.max_clean_concurrency() == 512
    assert sweep.mean_power_at_peak() == 50.0


def test_sweep_result_all_error_levels():
    sweep = SweepResult(
        platform="edison", scale="full", workload=WebWorkload(),
        levels=(_level(64, 100, errors=5),))
    assert sweep.peak_rps() == 0.0
    assert sweep.max_clean_concurrency() == 0


def test_level_result_error_rate_and_energy():
    clean = _level(64, 1000)
    assert clean.error_rate == 0.0
    assert clean.energy_joules == pytest.approx(100.0)
    dirty = _level(64, 900, errors=100)
    assert dirty.error_rate == pytest.approx(0.1)
    assert dirty.has_server_errors
