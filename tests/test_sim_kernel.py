"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    EmptySchedule, Event, Interrupt, Simulation, SimulationError,
)


def test_clock_starts_at_zero():
    assert Simulation().now == 0.0


def test_clock_custom_start():
    assert Simulation(start=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(3.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [3.5]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulation()
    got = []

    def proc():
        value = yield sim.timeout(1, value="payload")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_events_fire_in_time_order():
    sim = Simulation()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    for delay, tag in [(3, "c"), (1, "a"), (2, "b")]:
        sim.process(proc(delay, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_among_simultaneous_events():
    sim = Simulation()
    order = []

    def proc(tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_clock():
    sim = Simulation()

    def ticker():
        while True:
            yield sim.timeout(1)

    sim.process(ticker())
    sim.run(until=10)
    assert sim.now == 10


def test_run_until_past_time_rejected():
    sim = Simulation()

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1)


def test_process_requires_generator():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.process([1, 2, 3])


def test_run_until_event_returns_value():
    sim = Simulation()

    def proc():
        yield sim.timeout(2)
        return 42

    result = sim.run(until=sim.process(proc()))
    assert result == 42
    assert sim.now == 2


def test_run_until_event_never_fires_raises():
    sim = Simulation()
    pending = sim.event()

    def proc():
        yield sim.timeout(1)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run(until=pending)


def test_process_waits_on_process():
    sim = Simulation()
    log = []

    def child():
        yield sim.timeout(4)
        return "done"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(4, "done")]


def test_yield_non_event_raises_in_process():
    sim = Simulation()

    def proc():
        yield 17

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(7, "open")]


def test_event_double_trigger_rejected():
    sim = Simulation()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_fail_propagates_to_waiter():
    sim = Simulation()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unhandled_process_exception_surfaces():
    sim = Simulation()

    def bad():
        yield sim.timeout(1)
        raise ValueError("unhandled")

    sim.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulation()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(victim):
        yield sim.timeout(3)
        victim.interrupt(cause="failure-injection")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert log == [(3, "failure-injection")]


def test_interrupt_dead_process_rejected():
    sim = Simulation()

    def quick():
        yield sim.timeout(1)

    victim = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        victim.interrupt()


def test_any_of_fires_on_first():
    sim = Simulation()
    log = []

    def proc():
        t_fast = sim.timeout(1, value="fast")
        t_slow = sim.timeout(5, value="slow")
        result = yield sim.any_of([t_fast, t_slow])
        log.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert log == [(1, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulation()
    log = []

    def proc():
        events = [sim.timeout(d, value=d) for d in (1, 5, 3)]
        result = yield sim.all_of(events)
        log.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert log == [(5, [1, 3, 5])]


def test_all_of_empty_fires_immediately():
    sim = Simulation()
    log = []

    def proc():
        yield sim.all_of([])
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [0.0]


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Simulation().step()


def test_peek_reports_next_event_time():
    sim = Simulation()
    sim.timeout(9)
    assert sim.peek() == 9
    sim.run()
    assert sim.peek() == float("inf")


def test_process_value_available_after_run():
    sim = Simulation()

    def proc():
        yield sim.timeout(1)
        return "result"

    p = sim.process(proc())
    sim.run()
    assert p.ok and p.value == "result"


def test_event_value_unavailable_before_trigger():
    sim = Simulation()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok
