"""Unit tests for the discrete-event simulation kernel."""

import random

import pytest

from repro.sim import (
    EmptySchedule, Event, Interrupt, Resource, Simulation, SimulationError,
)


def test_clock_starts_at_zero():
    assert Simulation().now == 0.0


def test_clock_custom_start():
    assert Simulation(start=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(3.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [3.5]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulation()
    got = []

    def proc():
        value = yield sim.timeout(1, value="payload")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_events_fire_in_time_order():
    sim = Simulation()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    for delay, tag in [(3, "c"), (1, "a"), (2, "b")]:
        sim.process(proc(delay, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_among_simultaneous_events():
    sim = Simulation()
    order = []

    def proc(tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_clock():
    sim = Simulation()

    def ticker():
        while True:
            yield sim.timeout(1)

    sim.process(ticker())
    sim.run(until=10)
    assert sim.now == 10


def test_run_until_past_time_rejected():
    sim = Simulation()

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1)


def test_process_requires_generator():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.process([1, 2, 3])


def test_run_until_event_returns_value():
    sim = Simulation()

    def proc():
        yield sim.timeout(2)
        return 42

    result = sim.run(until=sim.process(proc()))
    assert result == 42
    assert sim.now == 2


def test_run_until_event_never_fires_raises():
    sim = Simulation()
    pending = sim.event()

    def proc():
        yield sim.timeout(1)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run(until=pending)


def test_process_waits_on_process():
    sim = Simulation()
    log = []

    def child():
        yield sim.timeout(4)
        return "done"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(4, "done")]


def test_yield_non_event_raises_in_process():
    sim = Simulation()

    def proc():
        yield "not an event"

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_bare_number_is_a_delay():
    # A plain float/int yield is shorthand for Timeout(sim, delay).
    sim = Simulation()
    log = []

    def proc():
        yield 17
        log.append(sim.now)
        yield 2.5
        log.append(sim.now)
        yield 0
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [17.0, 19.5, 19.5]


def test_bare_number_delay_rejects_negative_and_non_finite():
    for bad in (-1.0, float("nan"), float("inf")):
        sim = Simulation()

        def proc(delay=bad):
            yield delay

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()


def test_interrupt_during_bare_delay_does_not_double_resume():
    # The superseded calendar entry must be skipped, not delivered to
    # whatever the process waits on next.
    sim = Simulation()
    log = []

    def sleeper():
        try:
            yield 10.0
            log.append(("slept", sim.now))
        except Interrupt:
            log.append(("interrupted", sim.now))
            yield 3.0
            log.append(("resumed", sim.now))

    def poker(target):
        yield 4.0
        target.interrupt("poke")

    proc = sim.process(sleeper())
    sim.process(poker(proc))
    sim.run()
    assert log == [("interrupted", 4.0), ("resumed", 7.0)]


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(7, "open")]


def test_event_double_trigger_rejected():
    sim = Simulation()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_fail_propagates_to_waiter():
    sim = Simulation()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unhandled_process_exception_surfaces():
    sim = Simulation()

    def bad():
        yield sim.timeout(1)
        raise ValueError("unhandled")

    sim.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulation()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(victim):
        yield sim.timeout(3)
        victim.interrupt(cause="failure-injection")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert log == [(3, "failure-injection")]


def test_interrupt_dead_process_rejected():
    sim = Simulation()

    def quick():
        yield sim.timeout(1)

    victim = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        victim.interrupt()


def test_any_of_fires_on_first():
    sim = Simulation()
    log = []

    def proc():
        t_fast = sim.timeout(1, value="fast")
        t_slow = sim.timeout(5, value="slow")
        result = yield sim.any_of([t_fast, t_slow])
        log.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert log == [(1, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulation()
    log = []

    def proc():
        events = [sim.timeout(d, value=d) for d in (1, 5, 3)]
        result = yield sim.all_of(events)
        log.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert log == [(5, [1, 3, 5])]


def test_all_of_empty_fires_immediately():
    sim = Simulation()
    log = []

    def proc():
        yield sim.all_of([])
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [0.0]


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Simulation().step()


def test_peek_reports_next_event_time():
    sim = Simulation()
    sim.timeout(9)
    assert sim.peek() == 9
    sim.run()
    assert sim.peek() == float("inf")


def test_process_value_available_after_run():
    sim = Simulation()

    def proc():
        yield sim.timeout(1)
        return "result"

    p = sim.process(proc())
    sim.run()
    assert p.ok and p.value == "result"


def test_event_value_unavailable_before_trigger():
    sim = Simulation()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


# -- non-finite time guards -------------------------------------------------


def test_timeout_rejects_non_finite_and_negative_delay():
    sim = Simulation()
    for bad in (float("nan"), float("inf"), float("-inf"), -0.5):
        with pytest.raises(ValueError):
            sim.timeout(bad)


def test_simulation_rejects_non_finite_start():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            Simulation(start=bad)


def test_run_rejects_non_finite_until():
    for bad in (float("nan"), float("inf"), float("-inf")):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.run(until=bad)


def test_schedule_rejects_non_finite_delay():
    sim = Simulation()
    for bad in (float("nan"), float("inf")):
        with pytest.raises(ValueError):
            sim._schedule(sim.event(), delay=bad)


# -- kernel invariants ------------------------------------------------------


def test_now_monotonic_across_randomized_workload():
    # Property test: whatever mix of timeouts, bare delays, resource
    # waits and child processes runs, the clock never moves backwards
    # and events are observed in non-decreasing time order.
    rng = random.Random(20160901)
    sim = Simulation()
    resource = Resource(sim, capacity=2)
    observed = []

    def child(delay):
        yield delay
        return delay

    def worker(seed):
        r = random.Random(seed)
        for _ in range(r.randint(3, 12)):
            before = sim.now
            roll = r.random()
            if roll < 0.35:
                yield r.uniform(0.0, 2.0)          # bare delay
            elif roll < 0.6:
                yield sim.timeout(r.uniform(0.0, 1.0))
            elif roll < 0.85:
                grant = resource.request()
                yield grant
                yield r.uniform(0.0, 0.3)
                resource.release(grant)
            else:
                yield sim.process(child(r.uniform(0.0, 0.5)))
            assert sim.now >= before
            observed.append(sim.now)

    for _ in range(25):
        sim.process(worker(rng.randrange(2**31)))
    sim.run()
    assert len(observed) > 100
    assert all(b >= a for a, b in zip(observed, observed[1:]))


def test_resource_fifo_grant_order():
    # Grants must be served strictly in arrival order, regardless of
    # how the waiters were spawned.
    rng = random.Random(7)
    sim = Simulation()
    resource = Resource(sim, capacity=1)
    arrivals = {idx: rng.uniform(0.0, 5.0) for idx in range(12)}
    order = []

    def worker(idx):
        yield arrivals[idx]
        grant = resource.request()
        yield grant
        order.append(idx)
        yield 0.9   # hold long enough that a queue builds up
        resource.release(grant)

    spawn = list(arrivals)
    rng.shuffle(spawn)
    for idx in spawn:
        sim.process(worker(idx))
    sim.run()
    assert order == sorted(arrivals, key=arrivals.__getitem__)
