"""Unit tests for time-series monitors and RNG streams."""

import pytest

from repro.sim import RngStreams, Simulation, TimeSeries, derive_seed
from repro.sim.monitor import periodic_sampler


def test_timeseries_record_and_len():
    ts = TimeSeries("t")
    ts.record(0, 1.0)
    ts.record(1, 2.0)
    assert len(ts) == 2


def test_timeseries_rejects_time_reversal():
    ts = TimeSeries()
    ts.record(5, 1.0)
    with pytest.raises(ValueError):
        ts.record(4, 1.0)


def test_timeseries_at_step_function():
    ts = TimeSeries()
    ts.record(0, 10.0)
    ts.record(10, 20.0)
    assert ts.at(0) == 10.0
    assert ts.at(9.99) == 10.0
    assert ts.at(10) == 20.0
    assert ts.at(100) == 20.0


def test_timeseries_at_before_first_sample():
    ts = TimeSeries()
    ts.record(5, 1.0)
    with pytest.raises(ValueError):
        ts.at(4)


def test_timeseries_empty_statistics_raise():
    ts = TimeSeries()
    with pytest.raises(ValueError):
        ts.mean()
    with pytest.raises(ValueError):
        ts.maximum()
    with pytest.raises(ValueError):
        ts.at(0)


def test_timeseries_integral_constant_power():
    """A constant 50 W over 10 s must integrate to 500 J."""
    ts = TimeSeries("power")
    for t in range(11):
        ts.record(t, 50.0)
    assert ts.integrate() == pytest.approx(500.0)


def test_timeseries_integral_ramp():
    """Linear 0->100 W over 10 s integrates to 500 J (triangle)."""
    ts = TimeSeries("power")
    for t in range(11):
        ts.record(t, 10.0 * t)
    assert ts.integrate() == pytest.approx(500.0)


def test_periodic_sampler_samples_on_schedule():
    sim = Simulation()
    ts = TimeSeries()
    sim.process(periodic_sampler(sim, 2.0, lambda: sim.now, ts, until=10))
    sim.run()
    assert ts.times == [0, 2, 4, 6, 8, 10]
    assert ts.values == [0, 2, 4, 6, 8, 10]


def test_periodic_sampler_rejects_bad_interval():
    sim = Simulation()
    with pytest.raises(ValueError):
        next(periodic_sampler(sim, 0, lambda: 0.0, TimeSeries()))


def test_rng_streams_are_deterministic():
    a = RngStreams(42).stream("web").random()
    b = RngStreams(42).stream("web").random()
    assert a == b


def test_rng_streams_are_independent():
    streams = RngStreams(42)
    first = streams.stream("web").random()
    # Drawing from another stream must not perturb the first one.
    streams2 = RngStreams(42)
    streams2.stream("mapreduce").random()
    second = streams2.stream("web").random()
    assert first == second


def test_rng_different_names_differ():
    streams = RngStreams(42)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_rng_spawn_namespacing():
    root = RngStreams(42)
    child_a = root.spawn("x").stream("s").random()
    child_b = root.spawn("y").stream("s").random()
    assert child_a != child_b
    assert RngStreams(42).spawn("x").stream("s").random() == child_a


def test_derive_seed_stable_and_positive():
    seed = derive_seed(1, "name")
    assert seed == derive_seed(1, "name")
    assert 0 <= seed < 2 ** 63
