"""Unit tests for Resource, Container and Store."""

import pytest

from repro.sim import Container, Resource, Simulation, SimulationError, Store


def test_resource_rejects_bad_capacity():
    sim = Simulation()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulation()
    res = Resource(sim, capacity=2)
    granted = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            granted.append((tag, sim.now))
            yield sim.timeout(hold)

    sim.process(user("a", 10))
    sim.process(user("b", 10))
    sim.process(user("c", 10))
    sim.run()
    assert granted == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_fifo_queue_order():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(1)

    for tag in range(6):
        sim.process(user(tag))
    sim.run()
    assert order == list(range(6))


def test_resource_release_without_grant_is_noop():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    req = res.request()
    res.release(req)  # granted then released immediately: count back to 0
    assert res.count == 0


def test_resource_cancel_waiting_request():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    second.cancel()
    assert res.queue_length == 0
    res.release(first)
    assert res.count == 0


def test_cancel_granted_request_rejected():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    req = res.request()
    with pytest.raises(SimulationError):
        req.cancel()


def test_resource_busy_time_integration():
    sim = Simulation()
    res = Resource(sim, capacity=2)

    def user(hold):
        with res.request() as req:
            yield req
            yield sim.timeout(hold)

    sim.process(user(10))
    sim.process(user(4))
    sim.run()
    # 2 slots busy for 4s, then 1 slot for 6s = 8 + 6 = 14 slot-seconds.
    assert res.busy_time() == pytest.approx(14.0)


def test_resource_utilization_window():
    sim = Simulation()
    res = Resource(sim, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield sim.timeout(5)

    sim.process(user())
    t0, busy0 = sim.now, res.busy_time()
    sim.run(until=10)
    assert res.utilization_since(t0, busy0) == pytest.approx(0.5)


def test_container_put_get_levels():
    sim = Simulation()
    box = Container(sim, capacity=100, init=50)
    box.put(25)
    box.get(70)
    sim.run()
    assert box.level == pytest.approx(5)


def test_container_get_blocks_until_stock():
    sim = Simulation()
    box = Container(sim, capacity=10, init=0)
    log = []

    def consumer():
        yield box.get(5)
        log.append(sim.now)

    def producer():
        yield sim.timeout(3)
        yield box.put(5)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert log == [3]


def test_container_put_blocks_until_headroom():
    sim = Simulation()
    box = Container(sim, capacity=10, init=10)
    log = []

    def producer():
        yield box.put(4)
        log.append(sim.now)

    def consumer():
        yield sim.timeout(2)
        yield box.get(6)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert log == [2]


def test_container_invalid_args():
    sim = Simulation()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=5, init=9)
    box = Container(sim, capacity=5)
    with pytest.raises(ValueError):
        box.put(0)
    with pytest.raises(ValueError):
        box.get(-1)


def test_store_fifo_order():
    sim = Simulation()
    store = Store(sim)
    got = []

    def producer():
        for item in "abc":
            yield store.put(item)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_bounded_capacity_blocks_put():
    sim = Simulation()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("x")
        yield store.put("y")
        log.append(sim.now)

    def consumer():
        yield sim.timeout(5)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert log == [5]


def test_store_len_tracks_items():
    sim = Simulation()
    store = Store(sim)
    store.put("a")
    store.put("b")
    sim.run()
    assert len(store) == 2


# -- Interrupt interactions (the guarantee Interrupt's docstring makes) --


def test_interrupt_queued_waiter_leaks_no_capacity():
    """Killing a process waiting in the queue must not consume a slot."""
    from repro.sim import Interrupt
    sim = Simulation()
    res = Resource(sim, capacity=1)
    granted = []

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(10)

    def waiter():
        try:
            with res.request() as req:
                yield req
                granted.append("waiter")
                yield sim.timeout(1)
        except Interrupt:
            pass

    def late():
        with res.request() as req:
            yield req
            granted.append(("late", sim.now))
            yield sim.timeout(1)

    def killer(victim):
        yield sim.timeout(5)
        victim.interrupt(cause="chaos")

    sim.process(holder())
    victim = sim.process(waiter())
    sim.process(late())
    sim.process(killer(victim))
    sim.run()
    # The dead waiter never ran; the slot went straight to ``late``.
    assert granted == [("late", 10)]
    assert res.count == 0
    assert res.queue_length == 0


def test_interrupt_holder_mid_hold_frees_slot():
    """Killing the current holder returns its slot to the queue."""
    from repro.sim import Interrupt
    sim = Simulation()
    res = Resource(sim, capacity=1)
    granted = []

    def holder():
        try:
            with res.request() as req:
                yield req
                yield sim.timeout(100)
        except Interrupt:
            pass

    def waiter():
        with res.request() as req:
            yield req
            granted.append(sim.now)
            yield sim.timeout(1)

    def killer(victim):
        yield sim.timeout(3)
        victim.interrupt(cause="chaos")

    victim = sim.process(holder())
    sim.process(waiter())
    sim.process(killer(victim))
    sim.run()
    assert granted == [3]
    assert res.count == 0


def test_same_time_grant_then_interrupt_leaks_no_capacity():
    """Grant and interrupt landing at the same instant must not leak.

    At t=1 the holder releases — synchronously granting the queued
    request — and in the same timestep the killer interrupts the
    waiter before the grant is delivered.  The waiter's ``with`` block
    must still hand the slot back.
    """
    from repro.sim import Interrupt
    sim = Simulation()
    res = Resource(sim, capacity=1)
    granted = []

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(1)

    def waiter():
        try:
            with res.request() as req:
                yield req
                granted.append("waiter")
                yield sim.timeout(5)
        except Interrupt:
            pass

    def killer(victim):
        yield sim.timeout(1)
        victim.interrupt(cause="race")

    def late():
        yield sim.timeout(2)
        with res.request() as req:
            yield req
            granted.append(("late", sim.now))

    sim.process(holder())          # timeout scheduled first: fires first
    victim = sim.process(waiter())
    sim.process(killer(victim))
    sim.process(late())
    sim.run()
    assert granted == [("late", 2)]
    assert res.count == 0
    assert res.queue_length == 0


def test_same_time_interrupt_then_grant_leaks_no_capacity():
    """The mirror ordering: interrupt delivered before the release."""
    from repro.sim import Interrupt
    sim = Simulation()
    res = Resource(sim, capacity=1)
    granted = []

    def killer(victim):
        yield sim.timeout(1)
        victim.interrupt(cause="race")

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(1)

    def waiter():
        try:
            with res.request() as req:
                yield req
                granted.append("waiter")
                yield sim.timeout(5)
        except Interrupt:
            pass

    def late():
        yield sim.timeout(2)
        with res.request() as req:
            yield req
            granted.append(("late", sim.now))

    hold_proc = sim.process(holder())
    victim = sim.process(waiter())
    sim.process(killer(victim))    # URGENT interrupt beats the release
    sim.process(late())
    sim.run()
    assert hold_proc.is_alive is False
    assert granted == [("late", 2)]
    assert res.count == 0
    assert res.queue_length == 0
