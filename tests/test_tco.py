"""Tests for the Section 6 TCO model against Tables 9 and 10."""

import pytest

from repro.core import paperdata as paper
from repro.tco import (
    DELL_TCO, EDISON_TCO, TcoInputs, cluster_tco, node_energy_cost,
    savings_fraction, table10,
)


def test_tco_inputs_match_table9():
    assert EDISON_TCO.node_cost_usd == 120
    assert DELL_TCO.node_cost_usd == 2500
    assert EDISON_TCO.peak_power_w == pytest.approx(1.68)
    assert EDISON_TCO.idle_power_w == pytest.approx(1.40)
    assert DELL_TCO.peak_power_w == pytest.approx(109)
    assert DELL_TCO.idle_power_w == pytest.approx(52)


def test_tco_inputs_validation():
    with pytest.raises(ValueError):
        TcoInputs(node_cost_usd=-1, peak_power_w=2, idle_power_w=1)
    with pytest.raises(ValueError):
        TcoInputs(node_cost_usd=1, peak_power_w=1, idle_power_w=2)
    with pytest.raises(ValueError):
        TcoInputs(node_cost_usd=1, peak_power_w=2, idle_power_w=1,
                  lifetime_years=0)


def test_node_energy_cost_idle_server():
    inputs = TcoInputs(node_cost_usd=0, peak_power_w=100, idle_power_w=100)
    # 100 W for 3 years at $0.10/kWh = 0.1 kW * 26280 h * 0.1 $/kWh.
    assert node_energy_cost(inputs, 0.0) == pytest.approx(262.8)
    with pytest.raises(ValueError):
        node_energy_cost(inputs, 1.5)


def test_cluster_tco_scales_with_nodes():
    assert cluster_tco(EDISON_TCO, 35, 0.5) == pytest.approx(
        35 * cluster_tco(EDISON_TCO, 1, 0.5))
    with pytest.raises(ValueError):
        cluster_tco(EDISON_TCO, 0, 0.5)


@pytest.mark.parametrize("scenario,load", [
    ("web", "low"), ("web", "high"), ("bigdata", "low"), ("bigdata", "high"),
])
def test_table10_matches_paper(scenario, load):
    ours = table10()[(scenario, load)]
    published = paper.T10[(scenario, load)]
    assert ours["dell"] == pytest.approx(published["dell"], rel=0.02)
    assert ours["edison"] == pytest.approx(published["edison"], rel=0.02)


def test_edison_cluster_saves_up_to_47_percent():
    results = table10()
    best = max(savings_fraction(v) for v in results.values())
    assert best == pytest.approx(0.47, abs=0.02)


def test_edison_always_cheaper():
    for scenario in table10().values():
        assert scenario["edison"] < scenario["dell"]
