"""Tests for the Section 6 TCO model against Tables 9 and 10."""

import pytest

from repro.core import paperdata as paper
from repro.sim import TimeSeries
from repro.tco import (
    DELL_TCO, EDISON_TCO, TcoInputs, cluster_tco, energy_cost_usd,
    energy_cost_usd_tou, node_energy_cost, savings_fraction, table10,
    weighted_energy_rate,
)


def test_tco_inputs_match_table9():
    assert EDISON_TCO.node_cost_usd == 120
    assert DELL_TCO.node_cost_usd == 2500
    assert EDISON_TCO.peak_power_w == pytest.approx(1.68)
    assert EDISON_TCO.idle_power_w == pytest.approx(1.40)
    assert DELL_TCO.peak_power_w == pytest.approx(109)
    assert DELL_TCO.idle_power_w == pytest.approx(52)


def test_tco_inputs_validation():
    with pytest.raises(ValueError):
        TcoInputs(node_cost_usd=-1, peak_power_w=2, idle_power_w=1)
    with pytest.raises(ValueError):
        TcoInputs(node_cost_usd=1, peak_power_w=1, idle_power_w=2)
    with pytest.raises(ValueError):
        TcoInputs(node_cost_usd=1, peak_power_w=2, idle_power_w=1,
                  lifetime_years=0)


def test_node_energy_cost_idle_server():
    inputs = TcoInputs(node_cost_usd=0, peak_power_w=100, idle_power_w=100)
    # 100 W for 3 years at $0.10/kWh = 0.1 kW * 26280 h * 0.1 $/kWh.
    assert node_energy_cost(inputs, 0.0) == pytest.approx(262.8)
    with pytest.raises(ValueError):
        node_energy_cost(inputs, 1.5)


def test_cluster_tco_scales_with_nodes():
    assert cluster_tco(EDISON_TCO, 35, 0.5) == pytest.approx(
        35 * cluster_tco(EDISON_TCO, 1, 0.5))
    with pytest.raises(ValueError):
        cluster_tco(EDISON_TCO, 0, 0.5)


@pytest.mark.parametrize("scenario,load", [
    ("web", "low"), ("web", "high"), ("bigdata", "low"), ("bigdata", "high"),
])
def test_table10_matches_paper(scenario, load):
    ours = table10()[(scenario, load)]
    published = paper.T10[(scenario, load)]
    assert ours["dell"] == pytest.approx(published["dell"], rel=0.02)
    assert ours["edison"] == pytest.approx(published["edison"], rel=0.02)


def test_edison_cluster_saves_up_to_47_percent():
    results = table10()
    best = max(savings_fraction(v) for v in results.values())
    assert best == pytest.approx(0.47, abs=0.02)


def test_edison_always_cheaper():
    for scenario in table10().values():
        assert scenario["edison"] < scenario["dell"]


# -- time-of-use pricing -----------------------------------------------------


def test_tou_flat_tariff_matches_flat_helper():
    # 1 kW for 7200 s = 2 kWh; a single-step tariff must reproduce the
    # flat-rate helper to the float.
    series = [(0.0, 1000.0), (7200.0, 1000.0)]
    flat = energy_cost_usd(2.0 * 3.6e6, usd_per_kwh=0.10)
    assert energy_cost_usd_tou(series, [(0.0, 0.10)]) == flat


def test_tou_boundary_straddling_splits_the_trapezoid():
    # 1 kW from t=0 to t=7200 with the price doubling at t=3600: one
    # kWh at $0.10 plus one kWh at $0.20, even though no power sample
    # lands on the boundary.
    series = [(0.0, 1000.0), (7200.0, 1000.0)]
    tariff = [(0.0, 0.10), (3600.0, 0.20)]
    assert energy_cost_usd_tou(series, tariff) == pytest.approx(0.30)


def test_tou_ramp_straddling_boundary_weighs_each_side():
    # Power ramps 0 -> 2 kW over [0, 7200]; the first half integrates
    # 0.5 kWh (mean 0.5 kW), the second 1.5 kWh (mean 1.5 kW).
    series = [(0.0, 0.0), (7200.0, 2000.0)]
    tariff = [(0.0, 0.10), (3600.0, 0.20)]
    assert energy_cost_usd_tou(series, tariff) == pytest.approx(
        0.5 * 0.10 + 1.5 * 0.20)


def test_tou_samples_before_first_tariff_point_use_first_rate():
    series = [(0.0, 1000.0), (3600.0, 1000.0)]
    assert energy_cost_usd_tou(series, [(7200.0, 0.50)]) \
        == pytest.approx(0.50)


def test_tou_accepts_timeseries_and_many_bands():
    series = TimeSeries("power")
    for t in range(0, 4 * 3600 + 1, 600):
        series.record(float(t), 1000.0)
    # Four hourly bands: $0.10, $0.30, $0.10, $0.30 -> $0.80 total.
    tariff = [(0.0, 0.10), (3600.0, 0.30), (7200.0, 0.10), (10800.0, 0.30)]
    assert energy_cost_usd_tou(series, tariff) == pytest.approx(0.80)


def test_weighted_energy_rate_validation():
    with pytest.raises(ValueError):
        weighted_energy_rate([(0.0, 1.0), (1.0, 1.0)], [])
    with pytest.raises(ValueError):
        weighted_energy_rate([(0.0, 1.0), (1.0, 1.0)],
                             [(1.0, 0.1), (0.5, 0.2)])
    with pytest.raises(ValueError):
        weighted_energy_rate([(1.0, 1.0), (0.0, 1.0)], [(0.0, 0.1)])
    with pytest.raises(ValueError):
        energy_cost_usd_tou([(0.0, 1.0), (1.0, 1.0)], [(0.0, -0.1)])
