"""Tests for repro.telemetry: TSDB, rules, SLO/detection, exporters."""

import json

import pytest

from repro.telemetry import (AbsenceRule, Alert, AlertManager, DetectionReport,
                             SloReport, SloSpec, SpreadRule, Telemetry,
                             ThresholdRule, TimeSeriesDB, default_rules,
                             load_bundle, render_dashboard, save_bundle,
                             summary_lines, to_prometheus)
from repro.web import WebServiceDeployment


# -- TimeSeriesDB -------------------------------------------------------------

def test_db_series_keyed_by_name_and_labels():
    db = TimeSeriesDB()
    db.record(0.0, "cpu", 0.5, node="a")
    db.record(0.0, "cpu", 0.9, node="b")
    db.record(0.0, "mem", 0.1, node="a")
    assert len(db) == 3
    assert db.names() == ["cpu", "mem"]
    assert db.last("cpu", node="a") == (0.0, 0.5)
    assert db.last("cpu", node="c") is None


def test_db_select_matches_label_subset():
    db = TimeSeriesDB()
    db.record(0.0, "cpu", 0.5, node="a", role="web")
    db.record(0.0, "cpu", 0.9, node="b", role="db")
    assert len(db.select("cpu")) == 2
    only_web = db.select("cpu", role="web")
    assert len(only_web) == 1
    assert only_web[0][0]["node"] == "a"


def test_db_retention_trims_oldest():
    db = TimeSeriesDB(retention_samples=3)
    for i in range(10):
        db.record(float(i), "x", float(i))
    series = db.series("x")
    assert series.times == [7.0, 8.0, 9.0]
    assert db.dropped_samples == 7


def test_db_retention_validated():
    with pytest.raises(ValueError):
        TimeSeriesDB(retention_samples=0)


def test_db_query_delegation():
    db = TimeSeriesDB()
    for i in range(4):
        db.record(float(i), "reqs", 10.0 * i, node="a")
    assert db.rate("reqs", node="a") == pytest.approx(10.0)
    assert db.avg_over_time("reqs", node="a") == pytest.approx(15.0)
    assert db.rate("reqs", node="missing") == 0.0
    assert db.avg_over_time("reqs", node="missing") is None


def test_db_dict_roundtrip():
    db = TimeSeriesDB()
    db.record(0.25, "cpu", 0.5, node="a")
    db.record(0.5, "cpu", 0.75, node="a")
    clone = TimeSeriesDB.from_dicts(db.to_dicts())
    assert clone.last("cpu", node="a") == (0.5, 0.75)
    assert len(clone) == len(db)


def test_db_aligned_resamples_every_series():
    db = TimeSeriesDB()
    db.record(0.1, "cpu", 1.0, node="a")
    db.record(1.9, "cpu", 2.0, node="a")
    db.record(0.3, "cpu", 5.0, node="b")
    db.record(1.7, "cpu", 6.0, node="b")
    grids = db.aligned("cpu", step=0.5)
    assert len(grids) == 2
    for _labels, series in grids:
        assert all(abs(t / 0.5 - round(t / 0.5)) < 1e-9 for t in series.times)


# -- rules --------------------------------------------------------------------

def test_threshold_rule_latest_value():
    db = TimeSeriesDB()
    db.record(0.0, "load", 0.2, node="a")
    db.record(1.0, "load", 0.9, node="a")
    rule = ThresholdRule(name="hot", metric="load", op=">", threshold=0.8)
    assert rule.breaches(db, 1.0) == [("a", 0.9)]


def test_threshold_rule_windowed_mean_rides_out_spikes():
    db = TimeSeriesDB()
    for t, v in [(0.0, 0.1), (1.0, 0.1), (2.0, 0.95), (3.0, 0.1)]:
        db.record(t, "load", v, node="a")
    rule = ThresholdRule(name="hot", metric="load", op=">", threshold=0.8,
                         window_s=4.0)
    assert rule.breaches(db, 3.0) == []


def test_threshold_rule_rejects_unknown_op():
    with pytest.raises(ValueError):
        ThresholdRule(name="r", metric="m", op="!=", threshold=1.0)


def test_absence_rule_detects_silence():
    db = TimeSeriesDB()
    db.record(0.0, "up", 1.0, node="a")
    db.record(5.0, "up", 1.0, node="b")
    rule = AbsenceRule(name="silent", stale_s=2.0)
    breaches = rule.breaches(db, 5.0)
    assert breaches == [("a", 5.0)]


def test_spread_rule_flags_hot_node():
    db = TimeSeriesDB()
    for t in (0.0, 1.0):
        db.record(t, "cpu", 0.9, node="hot")
        db.record(t, "cpu", 0.1, node="cold")
    rule = SpreadRule(name="imbalance", metric="cpu", threshold=0.5)
    assert rule.breaches(db, 1.0) == [("hot", pytest.approx(0.8))]
    # One node alone cannot be imbalanced.
    solo = TimeSeriesDB()
    solo.record(0.0, "cpu", 0.9, node="only")
    assert rule.breaches(solo, 0.0) == []


def test_alert_manager_lifecycle_pending_firing_resolved():
    db = TimeSeriesDB()
    rule = ThresholdRule(name="hot", metric="load", op=">", threshold=0.5,
                         for_s=1.0)
    manager = AlertManager(db, [rule], interval=0.5)
    db.record(0.0, "load", 0.9, node="a")
    assert manager.evaluate(0.0) == []          # pending, not yet for_s
    assert manager.active() == []
    fired = manager.evaluate(1.0)               # breached for 1.0s -> fires
    assert len(fired) == 1 and fired[0].node == "a"
    assert manager.active() == fired
    db.record(2.0, "load", 0.1, node="a")
    manager.evaluate(2.0)                       # condition lifted
    assert manager.active() == []
    assert manager.history[0].resolved_at == 2.0
    assert manager.history[0].duration_s == pytest.approx(1.0)


def test_alert_manager_pending_resets_when_condition_clears():
    db = TimeSeriesDB()
    rule = ThresholdRule(name="hot", metric="load", op=">", threshold=0.5,
                         for_s=2.0)
    manager = AlertManager(db, [rule], interval=1.0)
    db.record(0.0, "load", 0.9, node="a")
    manager.evaluate(0.0)
    db.record(1.0, "load", 0.1, node="a")
    manager.evaluate(1.0)                       # clears the pending timer
    db.record(2.0, "load", 0.9, node="a")
    manager.evaluate(2.0)
    assert manager.evaluate(3.0) == []          # only 1s into the new breach
    assert len(manager.evaluate(4.0)) == 1


def test_alert_manager_rejects_duplicate_rule_names():
    with pytest.raises(ValueError):
        AlertManager(TimeSeriesDB(), [
            AbsenceRule(name="same"),
            ThresholdRule(name="same", metric="m", op=">", threshold=1.0)])


# -- SLO + detection reports --------------------------------------------------

def test_slo_report_arithmetic():
    report = SloReport(spec=SloSpec(availability_target=0.99,
                                    latency_p95_s=1.0),
                       requests=1000, errors=5, p95_s=0.5)
    assert report.availability == pytest.approx(0.995)
    assert report.error_budget == 10
    assert report.budget_consumed == pytest.approx(0.5)
    assert report.availability_met and report.latency_met
    missed = SloReport(spec=SloSpec(availability_target=0.999),
                       requests=1000, errors=5, p95_s=4.0)
    assert not missed.availability_met and not missed.latency_met
    assert any("MISSED" in line for line in missed.lines())


def test_slo_report_empty_run():
    report = SloReport(spec=SloSpec(), requests=0, errors=0, p95_s=None)
    assert report.availability is None
    assert report.availability_met is None
    assert report.lines()   # still renders


def test_slo_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(availability_target=0.0)
    with pytest.raises(ValueError):
        SloSpec(latency_p95_s=0.0)


class FakeFault:
    def __init__(self, kind, node, start):
        self.kind, self.node, self.start = kind, node, start


def test_detection_report_matches_first_covering_alert():
    faults = [FakeFault("crash", "n0", 10.0), FakeFault("crash", "n0", 50.0)]
    alerts = [Alert(rule="node_silent", node="n0", fired_at=11.0, value=1.0),
              Alert(rule="node_silent", node="n1", fired_at=12.0, value=1.0),
              Alert(rule="node_silent", node="n0", fired_at=52.0, value=1.0)]
    report = DetectionReport.match(faults, alerts)
    assert report.detected_count == 2
    first, second = report.detections
    assert first.time_to_detect == pytest.approx(1.0)
    assert second.time_to_detect == pytest.approx(2.0)
    assert report.mean_time_to_detect == pytest.approx(1.5)


def test_detection_report_undetected_fault():
    report = DetectionReport.match([FakeFault("crash", "n0", 10.0)], [])
    assert report.detected_count == 0
    assert report.detections[0].time_to_detect is None
    assert any("NOT DETECTED" in line for line in report.lines())


def test_detection_report_alert_consumed_once():
    faults = [FakeFault("crash", "n0", 10.0), FakeFault("crash", "n0", 20.0)]
    alerts = [Alert(rule="r", node="n0", fired_at=25.0, value=1.0)]
    report = DetectionReport.match(faults, alerts)
    # One firing cannot cover two faults.
    assert report.detected_count == 1


# -- a monitored run ----------------------------------------------------------

def monitored_web_run():
    telemetry = Telemetry()
    deployment = WebServiceDeployment("edison", "1/8", seed=3)
    telemetry.attach_web(deployment)
    deployment.run_level(16, duration=1.5, warmup=0.5)
    return telemetry, deployment


def test_scrapers_cover_every_node():
    telemetry, deployment = monitored_web_run()
    up = telemetry.db.select("up")
    assert len(up) == len(deployment.cluster.servers)
    for _labels, series in up:
        assert len(series) >= 5   # 1.5s run at 0.25s cadence
    # Web-tier metrics only exist on web nodes.
    web_series = telemetry.db.select("web_requests_total")
    assert len(web_series) == len(deployment.web_nodes)
    assert telemetry.db.select("cluster_power_w")


def test_monitored_run_slo_report():
    telemetry, _deployment = monitored_web_run()
    report = telemetry.slo_report()
    assert report.requests > 0
    assert report.p95_s is not None and report.p95_s < 3.0
    assert report.availability_met


def test_telemetry_attaches_once():
    telemetry, _deployment = monitored_web_run()
    with pytest.raises(RuntimeError):
        telemetry.attach_web(WebServiceDeployment("edison", "1/8", seed=3))


def test_default_rules_are_valid():
    telemetry = Telemetry(rules=default_rules(latency_p95_s=3.0))
    assert {r.name for r in telemetry.alerts.rules} == \
        {"node_silent", "cpu_imbalance", "web_latency_high"}


# -- exporters ----------------------------------------------------------------

def test_bundle_roundtrip_and_prometheus(tmp_path):
    telemetry, _deployment = monitored_web_run()
    bundle = telemetry.bundle(meta={"note": "test"})
    path = str(tmp_path / "tele.json")
    save_bundle(bundle, path)
    loaded = load_bundle(path)
    assert loaded["meta"]["note"] == "test"
    assert loaded["meta"]["kind"] == "web"
    assert len(loaded["series"]) == len(bundle["series"])

    prom = to_prometheus(loaded)
    assert "# TYPE repro_up gauge" in prom
    assert "# TYPE repro_web_requests_total counter" in prom
    assert 'repro_up{node="web-0"} 1.0' in prom
    # Metric and label names are sanitised to the Prometheus charset.
    assert "web.delay" not in prom


def test_load_bundle_rejects_foreign_json(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        load_bundle(str(path))


def test_dashboard_renders_selfcontained_html():
    telemetry, _deployment = monitored_web_run()
    telemetry.alerts.history.append(
        Alert(rule="demo", node="web-0", fired_at=1.0, value=2.0))
    html = render_dashboard(telemetry.bundle())
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html                    # sparklines are inline SVG
    assert "node_cpu_utilization" in html
    assert "demo" in html                    # the alert row
    assert "<script" not in html             # no JS, attachable anywhere


def test_summary_lines_cover_alerts_and_slo():
    telemetry, _deployment = monitored_web_run()
    lines = summary_lines(telemetry.bundle())
    text = "\n".join(lines)
    assert "Series:" in text
    assert "SLO report" in text
    assert "Alerts: none fired" in text


# -- partition symptoms: correlated silence + classification ------------------

def test_correlated_silence_fires_only_for_group_silence():
    from repro.telemetry import CorrelatedSilenceRule
    db = TimeSeriesDB()
    # Three agents scrape until t=5; a lone fourth died back at t=2.
    for node in ("a", "b", "c"):
        db.record(5.0, "up", 1.0, node=node)
    db.record(2.0, "up", 1.0, node="lone")
    rule = CorrelatedSilenceRule(name="nodes_unreachable", metric="up",
                                 stale_s=1.0, min_silent=2,
                                 correlation_s=0.5)
    # The lone node is stale but has no co-silent peer: stay quiet.
    assert rule.breaches(db, now=5.8) == []
    # Sever a, b together at t=5: both are stale and correlated.
    breached = dict(rule.breaches(db, now=6.5))
    assert set(breached) == {"a", "b", "c"}
    assert all(s == pytest.approx(1.5) for s in breached.values())


def test_correlated_silence_validation():
    from repro.telemetry import CorrelatedSilenceRule
    with pytest.raises(ValueError):
        CorrelatedSilenceRule(name="x", metric="up", min_silent=1)
    with pytest.raises(ValueError):
        CorrelatedSilenceRule(name="x", metric="up", correlation_s=0.0)


def test_default_rules_partition_flag_inserts_unreachable_rule():
    from repro.telemetry import CorrelatedSilenceRule
    stock = default_rules()
    assert [r.name for r in stock] == ["node_silent", "cpu_imbalance"]
    armed = default_rules(partitions=True)
    assert [r.name for r in armed] == \
        ["node_silent", "nodes_unreachable", "cpu_imbalance"]
    assert isinstance(armed[1], CorrelatedSilenceRule)


class FakePartition:
    """A partition record with the injector's member-set semantics."""

    def __init__(self, kind, node, start, members):
        self.kind, self.node, self.start = kind, node, start
        self.members = members

    def covers(self, name):
        return name == self.node or name in self.members


def test_detection_report_classifies_dead_vs_unreachable():
    faults = [FakeFault("crash", "n0", 10.0),
              FakePartition("partition", "rack-0", 30.0, {"n1", "n2"})]
    alerts = [Alert(rule="node_silent", node="n0", fired_at=11.0, value=1.0),
              Alert(rule="node_silent", node="n1", fired_at=31.0, value=1.0),
              Alert(rule="nodes_unreachable", node="n1", fired_at=31.2,
                    value=1.0),
              Alert(rule="nodes_unreachable", node="n2", fired_at=31.2,
                    value=1.0)]
    report = DetectionReport.match(faults, alerts)
    assert report.detected_count == 2
    crash, cut = report.detections
    assert (crash.expected, crash.observed) == ("down", "down")
    # The "silent together" vote outranks the plain dead-node page.
    assert (cut.expected, cut.observed) == ("unreachable", "unreachable")
    assert report.classification_accuracy == pytest.approx(1.0)
    assert report.misclassified == ()
    assert any("[classified unreachable]" in line
               for line in report.lines())


def test_detection_report_flags_misclassified_partition():
    # Only the dead-node rule fires for a severed rack: detected, but
    # called "down" when the ground truth is "unreachable".
    faults = [FakePartition("partition", "rack-0", 10.0, {"n1"})]
    alerts = [Alert(rule="node_silent", node="n1", fired_at=11.0,
                    value=1.0)]
    report = DetectionReport.match(faults, alerts)
    assert report.detected_count == 1
    assert len(report.misclassified) == 1
    assert report.classification_accuracy == 0.0
    assert any("MISCLASSIFIED as down, expected unreachable" in line
               for line in report.lines())
    assert report.to_dict()["misclassified"] == 1
