"""The telemetry plane's two contract tests.

1. **Bit-identity** — attaching a rule-free :class:`Telemetry` to a run
   must leave its results exactly equal to an unmonitored run, for both
   the web tier and MapReduce.  Scrapers are pure reads: no RNG draws,
   no resource acquisition, no stateful utilisation probes.
2. **Detection beats recovery** — with the stock rules, a node crash
   injected mid-job raises the ``node_silent`` alert *after* the
   injection time and *before* YARN's expiry-driven blacklist, i.e. the
   monitoring plane observes the failure faster than the framework
   reacts to it, with a finite measured time-to-detect.
"""

import pytest

from repro.faults import FaultInjector, single_node_kill
from repro.mapreduce import JobRunner, run_job
from repro.telemetry import Telemetry, default_rules
from repro.trace import Tracer
from repro.web import WebServiceDeployment

from tests.test_mapreduce_jobs import small_spec


# -- bit-identity -------------------------------------------------------------

def test_rule_free_telemetry_keeps_web_run_bit_identical():
    plain = WebServiceDeployment("edison", "1/8", seed=3) \
        .run_level(16, duration=1.5, warmup=0.5)
    telemetry = Telemetry()
    deployment = WebServiceDeployment("edison", "1/8", seed=3)
    telemetry.attach_web(deployment)
    monitored = deployment.run_level(16, duration=1.5, warmup=0.5)
    assert monitored == plain            # LevelResult compares exactly
    assert len(telemetry.db) > 0         # ...and telemetry really ran


def test_rule_free_telemetry_keeps_job_run_bit_identical():
    plain = run_job("edison", 4, small_spec(), seed=7)
    telemetry = Telemetry()
    runner = JobRunner("edison", 4, seed=7)
    telemetry.attach_job(runner)
    monitored = runner.run(small_spec())
    assert monitored.seconds == plain.seconds
    assert monitored.joules == plain.joules
    assert monitored.mean_watts == plain.mean_watts
    assert len(telemetry.db) > 0


def test_rules_do_not_perturb_results_either():
    # Rule evaluation is also read-only, so even an alerting telemetry
    # leaves the workload untouched.
    plain = WebServiceDeployment("edison", "1/8", seed=3) \
        .run_level(16, duration=1.5, warmup=0.5)
    telemetry = Telemetry(rules=default_rules())
    deployment = WebServiceDeployment("edison", "1/8", seed=3)
    telemetry.attach_web(deployment)
    assert deployment.run_level(16, duration=1.5, warmup=0.5) == plain


def test_exemplar_telemetry_does_not_perturb_results():
    # Exemplar collection is deterministic bookkeeping over records the
    # scrape already reads — no RNG, no resource touches — so even a
    # traced + exemplar-collecting run stays bit-identical.
    plain = WebServiceDeployment("edison", "1/8", seed=3) \
        .run_level(16, duration=1.5, warmup=0.5)
    telemetry = Telemetry(exemplars=True)
    deployment = WebServiceDeployment("edison", "1/8", seed=3,
                                      trace=Tracer())
    telemetry.attach_web(deployment)
    assert deployment.run_level(16, duration=1.5, warmup=0.5) == plain
    assert len(telemetry.exemplars) > 0


def exemplar_run():
    telemetry = Telemetry(exemplars=True)
    deployment = WebServiceDeployment("edison", "1/8", seed=3,
                                      trace=Tracer())
    telemetry.attach_web(deployment)
    deployment.run_level(16, duration=1.5, warmup=0.5)
    return telemetry


def test_exemplars_are_deterministic_across_identical_runs():
    first = exemplar_run().exemplars.exemplars()
    second = exemplar_run().exemplars.exemplars()
    assert first == second               # same buckets, values, trace ids
    assert all(ex.trace_id > 0 for ex in first)


def test_untraced_run_collects_no_exemplars():
    # Without a tracer, call records carry trace_id 0 and the store
    # must stay empty rather than invent identities.
    telemetry = Telemetry(exemplars=True)
    deployment = WebServiceDeployment("edison", "1/8", seed=3)
    telemetry.attach_web(deployment)
    deployment.run_level(16, duration=1.0, warmup=0.25)
    assert len(telemetry.exemplars) == 0
    assert telemetry.slo_report().worst_exemplar is None


def test_worst_exemplar_reaches_slo_report_and_bundle(tmp_path):
    import json
    telemetry = exemplar_run()
    report = telemetry.slo_report()
    worst = report.worst_exemplar
    assert worst is not None
    store = telemetry.exemplars
    assert worst == store.worst().to_dict()
    assert worst["value"] == max(ex.value for ex in store.exemplars())
    assert any(f"trace {worst['trace_id']}" in line
               for line in report.lines())
    path = str(tmp_path / "bundle.json")
    telemetry.save(path)
    with open(path, encoding="utf-8") as handle:
        bundle = json.load(handle)
    assert bundle["slo"]["worst_exemplar"] == worst
    assert bundle["exemplars"] == store.to_dict()


# -- detection vs recovery ----------------------------------------------------

KILL_AT = 20.0


def crashed_job_run():
    tracer = Tracer()
    runner = JobRunner("edison", 4, seed=7, trace=tracer)
    victim = runner.slave_servers[1].name
    plan = single_node_kill(victim, KILL_AT, repair_s=30.0)
    FaultInjector(runner.cluster, plan, detection_s=0.25)
    telemetry = Telemetry(rules=default_rules())
    telemetry.attach_job(runner)
    report = runner.run(small_spec())
    return telemetry, tracer, victim, report


def test_node_crash_detected_before_yarn_recovers():
    telemetry, tracer, victim, _report = crashed_job_run()

    detection = telemetry.detection_report()
    crash = next(d for d in detection.detections if d.kind == "crash")
    assert crash.node == victim
    assert crash.detected, "node_silent never fired for the crashed node"
    assert crash.rule == "node_silent"

    # Finite, positive time-to-detect: the alert fired after the
    # injected crash time...
    assert crash.time_to_detect is not None
    assert 0.0 < crash.time_to_detect < 5.0

    # ...and before YARN's expiry-driven recovery (the blacklist is the
    # first step of remapping the victim's containers).
    blacklists = [e.ts for e in tracer.log.events(category="yarn",
                                                  name="node.blacklist")]
    assert blacklists, "YARN never blacklisted the crashed node"
    assert crash.detected_at < min(blacklists)


def test_node_silent_alert_resolves_after_repair():
    telemetry, _tracer, victim, _report = crashed_job_run()
    silent = [a for a in telemetry.alerts.history
              if a.rule == "node_silent" and a.node == victim]
    assert len(silent) == 1
    alert = silent[0]
    # Repaired at KILL_AT + 30: the agent resumes scraping and the
    # absence condition clears shortly after.
    assert alert.resolved_at is not None
    assert alert.resolved_at == pytest.approx(KILL_AT + 30.0, abs=2.0)


def test_detection_report_survives_bundle_roundtrip(tmp_path):
    from repro.telemetry import DetectionReport, load_bundle, save_bundle
    telemetry, _tracer, _victim, _report = crashed_job_run()
    path = str(tmp_path / "bundle.json")
    telemetry.save(path)
    loaded = load_bundle(path)
    report = DetectionReport.from_dict(loaded["detection"])
    assert report.detected_count == telemetry.detection_report().detected_count
    assert report.mean_time_to_detect == pytest.approx(
        telemetry.detection_report().mean_time_to_detect)
