"""Tests for repro.trace: events, spans, metrics, exporters, oracle."""

import json
import random

import pytest

from repro.cluster import hadoop_cluster
from repro.mapreduce import JOB_FACTORIES, run_job
from repro.mapreduce.config import default_config
from repro.mapreduce.yarn import YarnScheduler
from repro.sim import Simulation, TimeSeries, periodic_sampler
from repro.trace import (Counter, Gauge, Histogram, MetricsRegistry,
                         PHASE_SPAN, TraceEvent, TraceLog, Tracer,
                         delay_decomposition_from_trace, span_time_by_name,
                         to_chrome_trace, write_chrome_trace, write_csv,
                         write_jsonl)
from repro.web import WebServiceDeployment, measure_delay_decomposition


# -- TraceLog -----------------------------------------------------------------

def test_log_category_filtering():
    log = TraceLog(categories={"web"})
    assert log.append(TraceEvent(ts=0.0, category="web", name="a"))
    assert not log.append(TraceEvent(ts=1.0, category="resource", name="b"))
    assert len(log) == 1
    assert log.filtered == 1
    assert log.accepts("web") and not log.accepts("resource")


def test_log_ring_buffer_bounds_memory():
    log = TraceLog(max_events=100)
    for i in range(250):
        log.append(TraceEvent(ts=float(i), category="c", name="e"))
    assert len(log) == 100
    assert log.accepted == 250
    assert log.evicted == 150
    # The ring keeps the most recent events.
    assert [e.ts for e in log] == [float(i) for i in range(150, 250)]


def test_log_rejects_bad_arguments():
    with pytest.raises(ValueError):
        TraceLog(max_events=0)
    with pytest.raises(ValueError):
        TraceEvent(ts=-1.0, category="c", name="e")
    with pytest.raises(ValueError):
        TraceEvent(ts=0.0, category="c", name="e", phase="Z")


# -- Tracer & spans -----------------------------------------------------------

def test_span_nesting_and_ordering():
    tracer = Tracer()
    sim = Simulation(trace=tracer)

    def worker():
        with tracer.span("outer", category="t") as outer_id:
            yield sim.timeout(1.0)
            with tracer.span("inner", category="t") as inner_id:
                yield sim.timeout(2.0)
            yield sim.timeout(1.0)
        assert inner_id != outer_id

    sim.process(worker())
    sim.run()
    spans = {e.name: e for e in tracer.log.spans(category="t")}
    outer, inner = spans["outer"], spans["inner"]
    assert outer.ts == 0.0 and outer.dur == pytest.approx(4.0)
    assert inner.ts == 1.0 and inner.dur == pytest.approx(2.0)
    # Nesting is recorded: the inner span points at the outer one.
    assert inner.attrs["parent"] == outer.attrs["span_id"]
    assert inner.attrs["depth"] == 1 and outer.attrs["depth"] == 0
    # Containment: the inner span lies inside the outer interval.
    assert outer.ts <= inner.ts and inner.end <= outer.end


def test_span_stacks_are_per_process():
    tracer = Tracer()
    sim = Simulation(trace=tracer)

    def worker(name, delay):
        with tracer.span(name, category="t"):
            yield sim.timeout(delay)

    sim.process(worker("a", 3.0))
    sim.process(worker("b", 1.0))
    sim.run()
    spans = {e.name: e for e in tracer.log.spans(category="t")}
    # Interleaved processes must not become each other's parents.
    assert "parent" not in spans["a"].attrs
    assert "parent" not in spans["b"].attrs


def test_complete_rejects_future_start():
    tracer = Tracer()
    Simulation(trace=tracer)
    with pytest.raises(ValueError):
        tracer.complete("x", start=5.0)


def test_kernel_emits_process_spans_and_calendar_stats():
    tracer = Tracer()
    sim = Simulation(trace=tracer)

    def worker():
        yield sim.timeout(2.5)

    sim.process(worker(), name="w")
    sim.run()
    spans = tracer.log.spans(category="kernel", name="process:w")
    assert len(spans) == 1
    assert spans[0].dur == pytest.approx(2.5)
    stats = tracer.log.events(category="kernel", name="calendar")
    assert stats and stats[-1].attrs["scheduled"] >= 1
    assert stats[-1].attrs["processed"] >= 1


# -- metrics ------------------------------------------------------------------

def test_counter_and_gauge():
    counter, gauge = Counter("c"), Gauge("g")
    counter.inc()
    counter.inc(4)
    gauge.set(3.5)
    gauge.add(-1.0)
    assert counter.value == 5
    assert gauge.value == 2.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_histogram_percentile_against_brute_force():
    rng = random.Random(42)
    values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
    hist = Histogram(growth=1.08)
    for value in values:
        hist.observe(value)
    ordered = sorted(values)
    for p in (1, 25, 50, 90, 95, 99, 100):
        import math
        exact = ordered[max(0, math.ceil(p / 100 * len(ordered)) - 1)]
        estimate = hist.percentile(p)
        # The log-bucketed estimate is within one bucket of the exact
        # order statistic: a relative factor of at most ``growth``.
        assert exact / 1.08 <= estimate <= exact * 1.08, (p, exact, estimate)


def test_histogram_percentile_low_tail_clamped_to_min():
    # Regression: the geometric midpoint of the lowest occupied bucket
    # can fall below the observed minimum; low-percentile estimates
    # must be clamped into [min, max] just like the high tail.
    hist = Histogram(growth=2.0)
    for value in (1.9, 1000.0, 1001.0, 1002.0):
        hist.observe(value)
    assert hist.percentile(0) == 1.9
    for p in (0, 1, 10, 25, 50, 90, 100):
        assert 1.9 <= hist.percentile(p) <= 1002.0


def test_histogram_percentile_monotone_in_p_property():
    # Property, seeded: for any observation set, percentile() must be
    # non-decreasing in p — the clamp into [max(low, min), min(high,
    # max)] makes this structural (bucket intervals are disjoint and
    # increasing), and a dashboard with p50 > p95 is a bug wherever
    # the estimates land inside their buckets.
    rng = random.Random(1337)
    grid = [p / 2 for p in range(0, 201)]
    for trial in range(25):
        hist = Histogram(growth=rng.choice([1.05, 1.1, 1.5, 2.0]))
        count = rng.randint(1, 200)
        for _ in range(count):
            if rng.random() < 0.2:
                value = 0.0 if rng.random() < 0.5 else rng.choice(
                    [1e-12, 1e-9, 1e6, 1e9])
            else:
                value = rng.lognormvariate(0.0, 3.0)
            hist.observe(value)
        estimates = [hist.percentile(p) for p in grid]
        for p, lo, hi in zip(grid[1:], estimates, estimates[1:]):
            assert hi >= lo, (trial, p, lo, hi)


def test_histogram_edges():
    hist = Histogram()
    with pytest.raises(ValueError):
        hist.percentile(50)
    hist.observe(0.0)
    assert hist.percentile(50) == 0.0
    with pytest.raises(ValueError):
        hist.observe(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_metrics_registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("requests").inc(7)
    registry.gauge("depth").set(3)
    for v in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("delay").observe(v)
    snap = registry.snapshot(percentiles=(95.0,))
    assert snap["requests"] == 7
    assert snap["depth"] == 3
    assert snap["delay"]["count"] == 4
    assert snap["delay"]["p95"] == pytest.approx(4.0, rel=0.1)
    assert registry.counter("requests") is registry.counter("requests")


# -- exporters ----------------------------------------------------------------

def _small_traced_run():
    tracer = Tracer()
    deployment = WebServiceDeployment("edison", "1/8", seed=11, trace=tracer)
    deployment.run_level(16, duration=1.5, warmup=0.5)
    return tracer


def test_chrome_export_is_valid_and_consistent(tmp_path):
    tracer = _small_traced_run()
    path = tmp_path / "out.json"
    write_chrome_trace(tracer.log, str(path))
    data = json.loads(path.read_text())     # golden property: valid JSON
    events = data["traceEvents"]
    assert data["displayTimeUnit"] == "ms"
    span_events = [e for e in events if e.get("ph") == "X"]
    assert span_events
    horizon = 1.5 * 1e6 * 1.01              # run length in us, with slack
    for event in span_events:
        assert set(event) >= {"name", "cat", "pid", "tid", "ts", "ph", "dur"}
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["ts"] + event["dur"] <= horizon
    # Every referenced tid has a thread_name metadata record.
    named = {e["tid"] for e in events
             if e.get("ph") == "M" and e["name"] == "thread_name"}
    assert {e["tid"] for e in span_events} <= named


def test_chrome_trace_covers_three_layers():
    tracer = _small_traced_run()
    categories = {e.category for e in tracer.log}
    assert {"kernel", "resource", "web", "power"} <= categories
    chrome = to_chrome_trace(tracer.log)
    cats = {e.get("cat") for e in chrome["traceEvents"]}
    assert {"kernel", "resource", "web", "power"} <= cats


def test_jsonl_and_csv_exports(tmp_path):
    log = TraceLog()
    log.append(TraceEvent(ts=1.0, category="c", name="n", node="s0",
                          attrs={"k": 2}, phase=PHASE_SPAN, dur=0.5))
    jsonl = tmp_path / "out.jsonl"
    write_jsonl(log, str(jsonl))
    lines = jsonl.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["attrs"] == {"k": 2}
    csv_path = tmp_path / "out.csv"
    write_csv(log, str(csv_path))
    rows = csv_path.read_text().splitlines()
    assert rows[0].startswith("ts,")
    assert len(rows) == 2


# -- the trace as a correctness oracle ---------------------------------------

def test_table7_decomposition_rederived_from_trace():
    tracer = Tracer()
    reported = measure_delay_decomposition("edison", 480, duration=2.0,
                                           warmup=0.5, trace=tracer)
    derived = delay_decomposition_from_trace(tracer.log, after=0.5)
    assert derived.db_delay_s == pytest.approx(reported.db_delay_s,
                                               rel=0.01)
    assert derived.cache_delay_s == pytest.approx(reported.cache_delay_s,
                                                  rel=0.01)
    assert derived.total_delay_s == pytest.approx(reported.total_delay_s,
                                                  rel=0.01)
    assert derived.connect_delay_s > 0
    assert derived.requests > 0


def test_tracing_changes_no_web_numbers():
    kwargs = dict(duration=1.5, warmup=0.5)
    plain = WebServiceDeployment("edison", "1/8", seed=3).run_level(
        16, **kwargs)
    tracer = Tracer()
    traced = WebServiceDeployment("edison", "1/8", seed=3,
                                  trace=tracer).run_level(16, **kwargs)
    assert len(tracer.log) > 0
    assert traced == plain                   # bit-identical LevelResult


def test_tracing_changes_no_job_numbers():
    spec, config = JOB_FACTORIES["pi"]("edison", 4)
    plain = run_job("edison", 4, spec, config=config)
    tracer = Tracer()
    traced = run_job("edison", 4, spec, config=config, trace=tracer)
    assert traced.seconds == plain.seconds
    assert traced.joules == plain.joules
    # The traced run covers scheduler, task and power layers.
    categories = {e.category for e in tracer.log}
    assert {"yarn", "task", "power", "resource", "kernel"} <= categories
    assert tracer.log.spans(category="task", name="shuffle")
    profile = span_time_by_name(tracer.log, "task")
    assert profile["map-attempt"] > 0


def test_untraced_simulation_collects_no_events():
    sim = Simulation()
    assert sim.trace is None
    assert sim.calendar_stats()["scheduled"] == 0


# -- periodic sampler + tracer (satellite) ------------------------------------

def test_periodic_sampler_feeds_trace_timeline():
    tracer = Tracer()
    sim = Simulation(trace=tracer)
    series = TimeSeries("probe")
    sim.process(periodic_sampler(sim, 1.0, lambda: sim.now, series,
                                 until=3.0, tracer=tracer))
    sim.run()
    counters = tracer.log.counters(category="sample", name="probe")
    assert [c.attrs["value"] for c in counters] == series.values
    assert [c.ts for c in counters] == series.times


# -- YARN determinism & over-release (satellites) -----------------------------

def _yarn(seed=5, slaves=2):
    sim = Simulation()
    cluster = hadoop_cluster(sim, "edison", slaves)
    yarn = YarnScheduler(sim, cluster.metered_servers,
                         default_config("edison"), random.Random(seed))
    return sim, cluster, yarn


def test_nodemanager_over_release_raises():
    sim, cluster, yarn = _yarn(slaves=1)
    nm = yarn.nodes[cluster.metered_servers[0].name]
    nm.reserve(300)
    nm.release(300)
    with pytest.raises(ValueError):
        nm.release(300)                      # double release
    with pytest.raises(ValueError):
        nm.release(0)


def test_yarn_double_release_of_grant_raises():
    sim, cluster, yarn = _yarn(slaves=1)
    grants = []

    def task():
        grant = yield from yarn.allocate(150)
        grants.append(grant)

    sim.run(until=sim.process(task()))
    yarn.release(grants[0])
    with pytest.raises(ValueError):
        yarn.release(grants[0])


def test_identical_seeds_give_identical_schedules():
    def schedule(seed):
        spec, config = JOB_FACTORIES["pi"]("edison", 4)
        tracer = Tracer(categories={"yarn"})
        run_job("edison", 4, spec, config=config, seed=seed, trace=tracer)
        return [(e.ts, e.name, e.node, tuple(sorted(e.attrs.items())))
                for e in tracer.log]

    assert schedule(77) == schedule(77)
