"""Round-trip tests for the JSONL and CSV trace exporters.

The contract under test: a file written by ``write_jsonl``/``write_csv``
and re-parsed by ``read_jsonl``/``read_csv`` reproduces the original
event stream — same count, names, categories, phases, nodes and exact
(bit-for-bit) timestamps and durations.
"""

import gc

import pytest

from repro.trace import (TraceEvent, TraceLog, Tracer, read_csv, read_jsonl,
                         write_csv, write_jsonl)
from repro.web import WebServiceDeployment


def traced_web_run():
    tracer = Tracer()
    deployment = WebServiceDeployment("edison", "1/8", seed=11, trace=tracer)
    deployment.run_level(16, duration=1.0, warmup=0.25)
    assert len(tracer.log) > 100   # a real, busy event stream
    # Processes still in flight when the level ends hold vcore grants;
    # their generators' finally blocks release them (emitting .hold/.wait
    # trace spans) only when the garbage collector closes the generators.
    # Drop the deployment and collect *now* so the log is complete before
    # the caller snapshots it, instead of growing whenever GC happens to
    # run mid-assert.
    deployment = None
    gc.collect()
    return tracer.log


def assert_logs_equal(original: TraceLog, parsed: TraceLog):
    assert len(parsed) == len(original)
    for ours, theirs in zip(original, parsed):
        assert theirs.name == ours.name
        assert theirs.category == ours.category
        assert theirs.phase == ours.phase
        assert theirs.node == ours.node
        # Bit-exact, not approximate: repr/JSON round-trip floats.
        assert theirs.ts == ours.ts
        assert theirs.dur == ours.dur
        assert theirs.attrs == ours.attrs
        # Span identity survives the round trip, so causal trees can
        # be rebuilt from the re-read file.
        assert theirs.trace_id == ours.trace_id
        assert theirs.span_id == ours.span_id
        assert theirs.parent_id == ours.parent_id


def test_jsonl_roundtrip_real_run(tmp_path):
    log = traced_web_run()
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(log, path)
    assert_logs_equal(log, read_jsonl(path))


def test_csv_roundtrip_real_run(tmp_path):
    log = traced_web_run()
    path = str(tmp_path / "trace.csv")
    write_csv(log, path)
    assert_logs_equal(log, read_csv(path))


def test_csv_roundtrip_awkward_values(tmp_path):
    # Timestamps that don't have short decimal forms, attrs with quotes
    # and commas — the cases naive CSV handling corrupts.
    log = TraceLog()
    log.append(TraceEvent(ts=1.0 / 3.0, dur=0.1 + 0.2, phase="X",
                          category="c", name="a,b", node="n\"q",
                          attrs={"k": "v,w", "n": 1e-17}))
    log.append(TraceEvent(ts=2.0 / 3.0, phase="i", category="c",
                          name="plain", node=""))
    path = str(tmp_path / "trace.csv")
    write_csv(log, path)
    assert_logs_equal(log, read_csv(path))


def test_jsonl_roundtrip_awkward_values(tmp_path):
    log = TraceLog()
    log.append(TraceEvent(ts=1.0 / 3.0, dur=0.30000000000000004, phase="X",
                          category="c", name="weird é", node="n0",
                          attrs={"nested": {"a": [1, 2]}}))
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(log, path)
    assert_logs_equal(log, read_jsonl(path))


def test_jsonl_roundtrip_preserves_causal_tree(tmp_path):
    # The regression behind this test: the exporters used to drop span
    # identity, so a re-read file flattened every causal tree.
    from repro.causality import build_forest
    log = traced_web_run()
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(log, path)
    original = build_forest(log)
    parsed = build_forest(read_jsonl(path))
    assert len(original.by_id) > 0
    assert len(parsed.by_id) == len(original.by_id)
    assert len(parsed.roots) == len(original.roots)
    shape = lambda forest: [
        [(n.name, n.span_id, n.parent_id, len(n.children))
         for n in root.walk()]
        for root in forest.roots]
    assert shape(parsed) == shape(original)
    # At least one request span hangs off a call under a connection.
    chains = [tuple(a.name for a in parsed.ancestors(n.span_id))
              for n in parsed.walk() if n.name == "request"]
    assert ("call", "connection") in chains


def test_csv_legacy_header_still_loads(tmp_path):
    # Pre-identity CSV files (7 columns) must keep loading, with all
    # ids defaulting to 0 (no identity).
    path = tmp_path / "legacy.csv"
    path.write_text('ts,dur,phase,category,name,node,attrs\n'
                    '0.5,0.1,X,web,request,web-0,"{""status"": 200}"\n')
    log = read_csv(str(path))
    assert len(log) == 1
    event = next(iter(log))
    assert event.name == "request"
    assert event.trace_id == 0
    assert event.span_id == 0
    assert event.parent_id == 0


def test_read_csv_rejects_foreign_file(tmp_path):
    path = tmp_path / "other.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        read_csv(str(path))


def test_read_jsonl_skips_blank_lines(tmp_path):
    log = TraceLog()
    log.append(TraceEvent(ts=0.5, phase="i", category="c", name="x"))
    path = tmp_path / "trace.jsonl"
    write_jsonl(log, str(path))
    path.write_text(path.read_text() + "\n\n")
    assert len(read_jsonl(str(path))) == 1
