"""Edge and property tests for the TSDB query helpers.

The autoscale controller steers a fleet off ``rate()`` and friends, so
the helpers must be boringly total at their edges: counter resets must
not produce negative rates, empty windows must say "no data" instead
of raising, and resampling near the retention boundary must never trip
over float dust.
"""

import math
import random

import pytest

from repro.sim import TimeSeries
from repro.telemetry import TimeSeriesDB


# -- rate() across counter resets ---------------------------------------------

def test_rate_across_single_counter_reset():
    s = TimeSeries("reqs")
    # 0 -> 30 over 3 s, process restarts, 0 -> 10 over the next 1 s.
    for t, v in [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0),
                 (4.0, 10.0)]:
        s.record(t, v)
    # PromQL semantics: the post-reset sample counts as fresh increase.
    assert s.rate() == pytest.approx((30.0 + 10.0) / 4.0)


def test_rate_across_multiple_resets_never_negative():
    rng = random.Random(77)
    for _trial in range(50):
        s = TimeSeries("reqs")
        value = 0.0
        t = 0.0
        for _ in range(rng.randrange(2, 40)):
            t += rng.uniform(0.1, 2.0)
            if rng.random() < 0.2:
                value = rng.uniform(0.0, 5.0)   # reset (restart)
            else:
                value += rng.uniform(0.0, 10.0)
            s.record(t, value)
        assert s.rate() >= 0.0
        window = rng.uniform(0.5, t + 1.0)
        assert s.rate(window_s=window, now=t) >= 0.0


def test_rate_monotone_counter_matches_slope():
    s = TimeSeries("reqs")
    for i in range(20):
        s.record(float(i), 7.0 * i)
    assert s.rate() == pytest.approx(7.0)
    assert s.rate(window_s=5.0, now=19.0) == pytest.approx(7.0)


def test_rate_windows_with_too_few_samples_are_zero():
    s = TimeSeries("reqs")
    s.record(0.0, 5.0)
    assert s.rate() == 0.0                      # one sample total
    s.record(10.0, 25.0)
    assert s.rate(window_s=1.0, now=10.0) == 0.0  # one sample in window
    assert s.rate(window_s=1.0, now=50.0) == 0.0  # stale: none in window


def test_db_rate_of_missing_series_is_zero():
    db = TimeSeriesDB()
    assert db.rate("nope", node="web-0") == 0.0
    assert db.rate("nope", window_s=5.0, now=100.0) == 0.0


# -- avg_over_time over empty windows -----------------------------------------

def test_avg_over_time_empty_window_is_none_not_error():
    s = TimeSeries("watts")
    s.record(0.0, 3.0)
    s.record(1.0, 5.0)
    assert s.avg_over_time() == pytest.approx(4.0)
    # Query anchored long after the series went stale: no samples in
    # the window, and that must be a None, not a ZeroDivisionError.
    assert s.avg_over_time(window_s=2.0, now=100.0) is None
    assert s.max_over_time(window_s=2.0, now=100.0) is None


def test_avg_over_time_empty_series_raises():
    s = TimeSeries("watts")
    with pytest.raises(ValueError):
        s.avg_over_time()
    # The DB wrapper maps the same situation to None (absent series).
    assert TimeSeriesDB().avg_over_time("watts") is None


def test_avg_over_time_window_validation():
    s = TimeSeries("watts")
    s.record(0.0, 1.0)
    with pytest.raises(ValueError):
        s.avg_over_time(window_s=0.0)
    with pytest.raises(ValueError):
        s.rate(window_s=-1.0)


# -- resampling near retention boundaries -------------------------------------

def test_resample_after_retention_trim_does_not_raise():
    # Retention drops the oldest samples, so the series now starts at
    # an arbitrary (non-grid) time; resampling must clamp its first
    # grid point instead of asking for a value before the first sample.
    db = TimeSeriesDB(retention_samples=5)
    for i in range(50):
        db.record(0.3 + i * 0.7, "cpu", float(i), node="a")
    [(labels, resampled)] = db.aligned("cpu", step=1.0, node="a")
    series = db.series("cpu", node="a")
    assert resampled.times[0] >= series.times[0] - 1e-9
    assert all(math.isclose(t, round(t)) for t in resampled.times)


def test_resample_first_sample_on_grid_with_float_dust():
    # times[0] a few ulps above the grid point used to make at(t)
    # raise ("no sample at or before t"); the clamp holds the first
    # value instead.
    s = TimeSeries("cpu")
    first = 5.000000000000001
    s.record(first, 42.0)
    s.record(7.5, 43.0)
    out = s.resample(1.0)
    assert out.times[0] == pytest.approx(5.0)
    assert out.values[0] == 42.0


def test_resample_randomised_retention_boundaries_never_raise():
    rng = random.Random(20160901)
    for _trial in range(50):
        limit = rng.randrange(2, 8)
        db = TimeSeriesDB(retention_samples=limit)
        t = rng.uniform(0.0, 3.0)
        for i in range(rng.randrange(limit, 40)):
            t += rng.uniform(0.05, 1.5)
            db.record(t, "sig", rng.uniform(0.0, 100.0))
        step = rng.choice([0.25, 0.5, 1.0, 2.0])
        [(_labels, out)] = db.aligned("sig", step=step)
        series = db.series("sig")
        assert len(out.times) == len(out.values)
        if not out.times:
            # Legitimate: the retained span holds no multiple of step.
            assert series.times[-1] - series.times[0] < step
            continue
        # Grid points stay inside the retained span and hold values.
        assert out.times[0] >= series.times[0] - 1e-9
        assert out.times[-1] <= series.times[-1] + 1e-9


def test_resample_single_sample_series():
    s = TimeSeries("one")
    s.record(2.0, 9.0)
    out = s.resample(1.0)
    assert out.pairs() == [(2.0, 9.0)]


def test_resample_validation():
    s = TimeSeries("x")
    with pytest.raises(ValueError):
        s.resample(1.0)                         # empty series
    s.record(0.0, 1.0)
    with pytest.raises(ValueError):
        s.resample(0.0)                         # non-positive step
