"""Unit tests for the web stack's cost model and workload parameters."""

import pytest

from repro.core import paperdata as paper
from repro.web import params as P
from repro.web import (
    WebWorkload, mean_reply_bytes, tuned_calls_per_connection,
    workload_factor,
)


def test_mean_reply_bytes_matches_paper_mix_table():
    for image_fraction, reply in paper.S51_REPLY_SIZES.items():
        assert mean_reply_bytes(image_fraction) == pytest.approx(
            reply, rel=0.06)


def test_mean_reply_bytes_validates_fraction():
    with pytest.raises(ValueError):
        mean_reply_bytes(1.5)
    with pytest.raises(ValueError):
        mean_reply_bytes(-0.1)


def test_workload_factor_heavy_mix_costs_about_15_percent():
    light = workload_factor(0.0, 0.93)
    heavy = workload_factor(0.20, 0.93)
    assert heavy / light == pytest.approx(
        paper.S51_HEAVY_TO_LIGHT_RPS, abs=0.02)


def test_workload_factor_lower_hit_ratio_slightly_derates():
    assert workload_factor(0.0, 0.60) < workload_factor(0.0, 0.93)
    assert workload_factor(0.0, 0.60) > 0.9 * workload_factor(0.0, 0.93)


def test_tuned_calls_tracks_target_over_concurrency():
    assert tuned_calls_per_connection(512, 7080) == 14
    assert tuned_calls_per_connection(8, 7080) == 40      # capped
    assert tuned_calls_per_connection(2048, 7080) == 5    # floored


def test_tuned_calls_validation():
    with pytest.raises(ValueError):
        tuned_calls_per_connection(0, 100)
    with pytest.raises(ValueError):
        tuned_calls_per_connection(10, 0)


def test_webworkload_defaults_and_validation():
    workload = WebWorkload()
    assert workload.cache_hit_ratio == 0.93
    assert workload.image_fraction == 0.0
    assert workload.mean_reply_bytes == pytest.approx(1500)
    with pytest.raises(ValueError):
        WebWorkload(image_fraction=2.0)
    with pytest.raises(ValueError):
        WebWorkload(cache_hit_ratio=-0.1)


def test_platform_capacities_give_matching_cluster_peaks():
    """24 Edison and 2 Dell web servers must peak within a few percent."""
    edison_peak = 24 * P.PER_SERVER_CAPACITY_RPS["edison"]
    dell_peak = 2 * P.PER_SERVER_CAPACITY_RPS["dell"]
    assert edison_peak == pytest.approx(dell_peak, rel=0.05)
    assert edison_peak == pytest.approx(paper.S51_PEAK_RPS_LIGHT, rel=0.08)


def test_service_costs_reproduce_peak_cpu_utilisation():
    """Section 5.1.2: ~86 % CPU on Edison webs, ~45 % on Dell webs."""
    from repro.hardware import DELL_R620, EDISON
    heavy_reply_kb = mean_reply_bytes(0.20) / 1000.0
    for platform, spec, expected in (
        ("edison", EDISON, paper.S51_PEAK_UTILIZATION[("edison", "web")]["cpu"]),
        ("dell", DELL_R620, paper.S51_PEAK_UTILIZATION[("dell", "web")]["cpu"]),
    ):
        costs = P.COSTS[platform]
        per_request_mi = (costs.request_base_mi + costs.cache_client_mi
                          + costs.per_reply_kb_mi * heavy_reply_kb
                          + 0.07 * costs.db_client_mi)
        rate = P.PER_SERVER_CAPACITY_RPS[platform] * workload_factor(0.20, 0.93)
        cpu = rate * per_request_mi / spec.cpu.machine_dmips
        assert cpu == pytest.approx(expected, rel=0.25)
