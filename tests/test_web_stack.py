"""Integration tests for the web-service deployment and its mechanisms.

These use small scales and short windows so the whole file stays fast;
the full-scale paper comparisons live in the benchmark harness.
"""

import pytest

from repro.sim import Simulation
from repro.web import (
    PortPool, WebServiceDeployment, WebWorkload, delay_distribution,
    measure_delay_decomposition,
)
from repro.web import params as P


# -- PortPool -----------------------------------------------------------------

def test_port_pool_acquire_until_empty():
    sim = Simulation()
    pool = PortPool(sim, size=2, time_wait_s=5.0)
    assert pool.try_acquire()
    assert pool.try_acquire()
    assert not pool.try_acquire()


def test_port_pool_recycles_after_time_wait():
    sim = Simulation()
    pool = PortPool(sim, size=1, time_wait_s=5.0)
    assert pool.try_acquire()
    pool.release_after_time_wait()
    sim.run(until=4.9)
    assert not pool.try_acquire()
    sim.run(until=5.1)
    assert pool.try_acquire()


def test_port_pool_immediate_release_without_time_wait():
    sim = Simulation()
    pool = PortPool(sim, size=1, time_wait_s=0.0)
    assert pool.try_acquire()
    pool.release_after_time_wait()
    assert pool.try_acquire()


def test_port_pool_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        PortPool(sim, size=0, time_wait_s=1)
    with pytest.raises(ValueError):
        PortPool(sim, size=1, time_wait_s=-1)


# -- Deployment basics ---------------------------------------------------------

def test_deployment_rejects_unknown_platform():
    with pytest.raises(ValueError):
        WebServiceDeployment("sparc")


def test_deployment_builds_table6_layout():
    deployment = WebServiceDeployment("edison", "1/8")
    assert deployment.web_server_count == 3
    assert len(deployment.cache_nodes) == 2
    assert len(deployment.db_nodes) == 2


def test_deployment_memory_reservations_match_paper():
    deployment = WebServiceDeployment("edison", "1/8")
    web = deployment.web_nodes[0].server
    cache = deployment.cache_nodes[0].server
    assert web.memory.utilization() == pytest.approx(0.25)
    assert cache.memory.utilization() == pytest.approx(0.54)


def test_run_level_requires_sane_window():
    deployment = WebServiceDeployment("edison", "1/8")
    with pytest.raises(ValueError):
        deployment.run_level(64, duration=1.0, warmup=2.0)


def test_run_level_throughput_tracks_offered_load():
    deployment = WebServiceDeployment("edison", "1/8")
    result = deployment.run_level(16, duration=2.0, warmup=0.5)
    offered = 16 * result.calls_per_connection
    assert result.requests_per_second == pytest.approx(offered, rel=0.25)
    assert result.error_calls == 0
    assert result.mean_power_w > deployment.cluster.idle_watts() * 0.98


def test_overload_produces_500s_on_edison():
    deployment = WebServiceDeployment("edison", "1/8")
    # Offered = 256 * 5 = 1280 req/s >> 3-server capacity (~900).
    result = deployment.run_level(256, duration=2.5, warmup=0.5)
    assert result.error_calls > 0
    assert result.has_server_errors


def test_clean_level_below_capacity_on_edison():
    deployment = WebServiceDeployment("edison", "1/8")
    result = deployment.run_level(64, duration=2.5, warmup=0.5)
    assert result.error_calls == 0


def test_energy_joules_is_power_times_window():
    deployment = WebServiceDeployment("edison", "1/8")
    result = deployment.run_level(16, duration=2.0, warmup=0.5)
    assert result.energy_joules == pytest.approx(
        result.mean_power_w * result.window_s)


def test_heavier_mix_increases_delay():
    light = WebServiceDeployment("edison", "1/8", WebWorkload())
    heavy = WebServiceDeployment(
        "edison", "1/8", WebWorkload(image_fraction=0.20))
    delay_light = light.run_level(32, duration=2.0, warmup=0.5).mean_delay_s
    delay_heavy = heavy.run_level(32, duration=2.0, warmup=0.5).mean_delay_s
    assert delay_heavy > delay_light


def test_lower_hit_ratio_increases_db_traffic():
    high = WebServiceDeployment("edison", "1/8",
                                WebWorkload(cache_hit_ratio=0.93), seed=1)
    low = WebServiceDeployment("edison", "1/8",
                               WebWorkload(cache_hit_ratio=0.60), seed=1)
    high.run_level(32, duration=2.0, warmup=0.5)
    low.run_level(32, duration=2.0, warmup=0.5)
    high_queries = sum(db.queries for db in high.db_nodes)
    low_queries = sum(db.queries for db in low.db_nodes)
    assert low_queries > 2 * high_queries


def test_call_records_capture_decomposition():
    deployment = WebServiceDeployment("edison", "1/8")
    deployment.run_level(16, duration=2.0, warmup=0.5)
    records = [r for r in deployment.call_records() if r.ok]
    assert records
    with_db = [r for r in records if r.db_s > 0]
    assert all(r.total_s >= r.cache_s for r in records)
    if with_db:
        assert all(r.total_s >= r.cache_s + r.db_s for r in with_db)


def test_same_seed_reproduces_identical_level():
    a = WebServiceDeployment("edison", "1/8", seed=99).run_level(
        16, duration=2.0, warmup=0.5)
    b = WebServiceDeployment("edison", "1/8", seed=99).run_level(
        16, duration=2.0, warmup=0.5)
    assert a.ok_calls == b.ok_calls
    assert a.mean_delay_s == pytest.approx(b.mean_delay_s)


# -- Table 7 ------------------------------------------------------------------

def test_delay_decomposition_platform_gap():
    edison = measure_delay_decomposition("edison", 480, duration=2.0,
                                         warmup=0.5)
    dell = measure_delay_decomposition("dell", 480, duration=2.0, warmup=0.5)
    # Table 7 at 480 req/s: Edison ~9 ms total vs Dell ~1.4 ms; DB and
    # cache legs are each several times slower on Edison.
    assert edison.total_delay_s > 3 * dell.total_delay_s
    assert edison.db_delay_s > 2 * dell.db_delay_s
    assert edison.cache_delay_s > 4 * dell.cache_delay_s
    assert dell.total_delay_s < 0.005


def test_delay_decomposition_grows_with_rate_on_edison():
    low = measure_delay_decomposition("edison", 480, duration=2.0, warmup=0.5)
    high = measure_delay_decomposition("edison", 7680, duration=2.0,
                                       warmup=0.5)
    assert high.cache_delay_s > 2 * low.cache_delay_s
    assert high.total_delay_s > 2 * low.total_delay_s


# -- Figures 10/11 ---------------------------------------------------------------

def test_delay_histogram_dell_shows_backoff_spikes():
    log = delay_distribution("dell", total_rate_rps=4000, duration=3.0,
                             warmup=1.0)
    assert log.fraction_above(0.9) > 0.2  # heavy mass at the 1 s spike


def test_delay_histogram_edison_stays_subsecond():
    log = delay_distribution("edison", total_rate_rps=4000, duration=3.0,
                             warmup=1.0)
    assert log.fraction_above(0.9) < 0.05


def test_probe_log_histogram_bins():
    from repro.web import ProbeLog
    log = ProbeLog(delays_s=[0.1, 0.2, 1.1, 7.9, 12.0])
    hist = dict(log.histogram(bin_width_s=1.0, max_s=8.0))
    assert hist[0.0] == 2
    assert hist[1.0] == 1
    assert hist[7.0] == 2  # overflow clamps into the last bin
    with pytest.raises(ValueError):
        log.histogram(bin_width_s=0)


def test_probe_log_empty_statistics_raise():
    from repro.web import ProbeLog
    log = ProbeLog(delays_s=[])
    with pytest.raises(ValueError):
        log.mean()
    with pytest.raises(ValueError):
        log.fraction_above(1.0)
