"""Unit tests for the synthetic workload generators."""

import pytest

from repro.core import paperdata as paper
from repro.workloads import (
    Dataset, LogGenerator, TeragenGenerator, WikiDatabase,
    ZipfTextGenerator, build_tables, logcount_dataset, split_evenly,
    table_weights, terasort_dataset, wordcount_dataset,
)
from repro.workloads.datasets import DatasetFile


def test_split_evenly_preserves_total():
    files = split_evenly(1_000_003, 7, "f", bytes_per_record=10)
    assert sum(f.size_bytes for f in files) == 1_000_003
    assert len(files) == 7


def test_split_evenly_validation():
    with pytest.raises(ValueError):
        split_evenly(5, 10, "f", 1)
    with pytest.raises(ValueError):
        split_evenly(10, 0, "f", 1)


def test_dataset_totals_and_validation():
    files = split_evenly(1000, 4, "f", bytes_per_record=10)
    ds = Dataset("d", files, map_output_record_bytes=10,
                 map_output_ratio=1.5, combine_survival=0.1)
    assert ds.total_bytes == 1000
    assert ds.file_count == 4
    assert ds.total_records == pytest.approx(100, abs=4)
    with pytest.raises(ValueError):
        Dataset("d", (), 10, 1.0, 0.1)
    with pytest.raises(ValueError):
        Dataset("d", files, 10, 1.0, 0.0)


def test_wordcount_dataset_matches_paper():
    ds = wordcount_dataset()
    assert ds.file_count == paper.WORDCOUNT_INPUT_FILES
    assert ds.total_bytes == paper.WORDCOUNT_INPUT_BYTES
    # <word, 1> records inflate the input (~10 B out per ~6 B word).
    assert ds.map_output_ratio > 1.3
    assert ds.combine_survival < 0.1


def test_logcount_dataset_matches_paper():
    ds = logcount_dataset()
    assert ds.file_count == paper.LOGCOUNT_INPUT_FILES
    assert ds.total_bytes == paper.LOGCOUNT_INPUT_BYTES
    # Tiny keys from long lines: output is a small fraction of input.
    assert ds.map_output_ratio < 0.3
    assert ds.combine_survival < ds.map_output_ratio


def test_terasort_dataset_block_layout():
    ds = terasort_dataset()
    assert ds.total_bytes == paper.TERASORT_INPUT_BYTES
    assert ds.file_count == paper.TERASORT_MAPS       # 168 x 64 MB
    assert ds.map_output_ratio == 1.0
    assert ds.combine_survival == 1.0


def test_zipf_text_is_deterministic_and_skewed():
    words_a = ZipfTextGenerator(seed=3).words(2000)
    words_b = ZipfTextGenerator(seed=3).words(2000)
    assert words_a == words_b
    counts = {}
    for word in words_a:
        counts[word] = counts.get(word, 0) + 1
    top = max(counts.values())
    assert top > 20                    # Zipf head dominates
    assert len(counts) > 100           # with a long tail


def test_zipf_text_bytes_close_to_request():
    text = ZipfTextGenerator(seed=3).text(5000)
    assert 3500 < len(text) < 7000


def test_log_generator_lines_parse():
    gen = LogGenerator(seed=5)
    for line in gen.lines(50):
        key = LogGenerator.extract_key(line)
        date, level = key.split(" ")
        assert date.startswith("2016-02-")
        assert level in ("INFO", "WARN", "ERROR", "DEBUG")


def test_log_generator_validation():
    with pytest.raises(ValueError):
        LogGenerator(days=0)
    with pytest.raises(ValueError):
        LogGenerator().lines(-1)


def test_teragen_records_fixed_width():
    gen = TeragenGenerator(seed=2)
    records = gen.records(20)
    assert all(len(r) == 100 for r in records)
    keys = [TeragenGenerator.key_of(r) for r in records]
    assert all(len(k) == 10 for k in keys)
    assert TeragenGenerator(seed=2).records(20) == records


def test_wiki_tables_match_paper_shape():
    tables = build_tables()
    assert len(tables) == 15
    image = [t for t in tables if t.is_image]
    assert len(image) == 4
    total = sum(t.rows * t.mean_row_bytes for t in tables)
    assert total == pytest.approx(20e9, rel=0.01)


def test_table_weights_control_image_fraction():
    tables = build_tables()
    weights = table_weights(0.2, tables)
    image_weight = sum(w for w, t in zip(weights, tables) if t.is_image)
    assert image_weight == pytest.approx(0.2)
    assert sum(weights) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        table_weights(1.5, tables)


def test_wiki_rows_deterministic():
    db = WikiDatabase(seed=11)
    table = db.tables[0]
    assert db.row_bytes(table, 5) == WikiDatabase(seed=11).row_bytes(table, 5)
    payload = db.row_payload(table, 5)
    assert len(payload) == db.row_bytes(table, 5)
